//! The proxy engine.
//!
//! A transparent proxy at the organization's trust boundary: it intercepts
//! code requests, serves rewrites from its cache, otherwise fetches from
//! the origin, parses once, runs the filter pipeline, serializes once,
//! optionally signs the result, and records an audit-trail entry for the
//! remote administration console. All state is internally synchronized so
//! many client sessions can drive one proxy concurrently (the §4.2 scaling
//! experiment).

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use dvm_classfile::ClassFile;
use dvm_netsim::CycleModel;
use dvm_store::{Store, StoreStats};
use dvm_telemetry::{Counter, Histogram, SpanId, Telemetry};

use crate::cache::{CacheExportPage, CacheStats, CacheTier, RewriteCache};
use crate::filter::{FilterError, Pipeline, RequestContext};
use crate::sign::Signer;

/// Supplies original (untransformed) code bytes, keyed by URL.
///
/// Bytes come back as `Arc<[u8]>` so cache hits and concurrent fetches
/// share one allocation instead of copying class files per request.
pub trait CodeOrigin: Send + Sync {
    /// Fetches the resource, or `None` if it does not exist.
    fn fetch(&self, url: &str) -> Option<Arc<[u8]>>;
}

impl<T: CodeOrigin + ?Sized> CodeOrigin for Arc<T> {
    fn fetch(&self, url: &str) -> Option<Arc<[u8]>> {
        (**self).fetch(url)
    }
}

/// An origin backed by an in-memory map.
#[derive(Debug, Default)]
pub struct MapOrigin {
    entries: std::collections::HashMap<String, Arc<[u8]>>,
}

impl MapOrigin {
    /// Creates an empty origin.
    pub fn new() -> MapOrigin {
        MapOrigin::default()
    }

    /// Adds a resource.
    pub fn insert(&mut self, url: &str, bytes: Vec<u8>) {
        self.entries.insert(url.to_owned(), bytes.into());
    }
}

impl CodeOrigin for MapOrigin {
    fn fetch(&self, url: &str) -> Option<Arc<[u8]>> {
        self.entries.get(url).cloned()
    }
}

/// Deterministic rewrite-cost model.
///
/// The proxy used to time rewrites with `std::time::Instant`, which made
/// experiment output depend on the machine running it. Processing time is
/// now *charged* rather than measured: a fixed number of CPU cycles per
/// input byte, converted through the simulated clock — identical output
/// everywhere, matching the rest of the simulated-time system.
#[derive(Debug, Clone, Copy)]
pub struct RewriteCost {
    /// Proxy-side cycles to parse + instrument + regenerate one byte.
    pub cycles_per_byte: u64,
    /// The proxy host's CPU model.
    pub cpu: CycleModel,
}

impl Default for RewriteCost {
    fn default() -> Self {
        // Matches `dvm_core::CostModel::default()`: ~265 ms for a mean
        // ~40 KB applet on the paper's 200 MHz PentiumPro.
        RewriteCost {
            cycles_per_byte: 1_300,
            cpu: CycleModel::PENTIUM_PRO_200,
        }
    }
}

impl RewriteCost {
    /// Simulated nanoseconds charged for rewriting `input_bytes`.
    pub fn charge_ns(&self, input_bytes: u64) -> u64 {
        self.cpu
            .time_for(input_bytes * self.cycles_per_byte)
            .as_nanos()
    }
}

/// Proxy request failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ProxyError {
    /// Origin had no such resource.
    NotFound(String),
    /// The resource is not a parseable class file.
    Parse(String),
    /// A pipeline filter failed.
    Filter(FilterError),
}

impl std::fmt::Display for ProxyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProxyError::NotFound(u) => write!(f, "not found: {u}"),
            ProxyError::Parse(e) => write!(f, "parse failed: {e}"),
            ProxyError::Filter(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProxyError {}

/// How a request was satisfied, for the audit trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// Rewritten now (origin fetch + pipeline).
    Rewritten,
    /// Served from the memory cache tier.
    MemoryCache,
    /// Served from the disk cache tier.
    DiskCache,
    /// Filled from a peer shard's cache (cluster cache-fill protocol):
    /// the rewrite happened elsewhere in the fleet, this proxy only
    /// paid a peer round trip.
    Peer,
}

/// A peer shard's rewrite cache, consulted on a local miss before the
/// full rewrite cost is paid and offered results after a local rewrite.
///
/// Implementations live above this crate (e.g. `dvm-cluster` speaks the
/// wire protocol's `PEER_GET`/`PEER_PUT` frames); the proxy only knows
/// that some fleet may exist. Both methods are best-effort: a `None` or
/// ignored offer degrades to the stand-alone behavior.
pub trait PeerCache: Send + Sync {
    /// Fetches the cached (signed) bytes for `url` from the url's home
    /// shard, or `None` when this proxy *is* the home shard, the peer
    /// misses, or the peer is unreachable.
    fn fetch_from_home(&self, url: &str) -> Option<Vec<u8>>;

    /// Offers freshly rewritten bytes to the url's home shard so one
    /// organization-wide rewrite populates the fleet. Returns `true`
    /// when an offer was actually sent (i.e. some other shard is home).
    fn offer_to_home(&self, url: &str, bytes: &[u8]) -> bool;
}

/// A compiled-IR package produced for a rewritten class.
#[derive(Debug, Clone)]
pub struct IrProduct {
    /// Wire-encoded register IR for the rewritten class.
    pub bytes: Vec<u8>,
    /// Pass-pipeline work per pass name (units of rewriting work), used
    /// to attribute `exec.opt.<pass>` child spans.
    pub pass_work: Vec<(String, u64)>,
    /// Simulated cycles the compilation cost.
    pub compile_cycles: u64,
}

/// Produces optimized register IR for a served class: the proxy's
/// `compiler`/`optimizer` stages for the client's optimizing execution
/// tier. Implementations live above this crate (`dvm-core` wires the
/// `dvm-compiler` service in); the proxy only caches and serves the
/// result under `ir://<signature>` keys.
pub trait IrProducer: Send + Sync {
    /// Compiles `class_bytes` (the rewritten, pre-signature payload), or
    /// `None` to leave the class on the interpreter tier.
    fn produce(&self, class_bytes: &[u8]) -> Option<IrProduct>;
}

/// URL scheme under which compiled IR packages are cached and served.
pub const IR_SCHEME: &str = "ir://";

/// The cache/serve key for the IR package belonging to a served payload.
///
/// Keyed by the MD5 of the *signed served bytes* — the same signature the
/// rewrite cache already identifies payloads by — so a client that holds
/// a served class can derive the key without another round trip.
pub fn ir_key(served_bytes: &[u8]) -> String {
    format!(
        "{IR_SCHEME}{}",
        crate::md5::hex(&crate::md5::md5(served_bytes))
    )
}

/// A served response with provenance.
#[derive(Debug, Clone)]
pub struct ServedResponse {
    /// The (possibly rewritten and signed) class bytes. Shared, not
    /// owned: a memory-tier hit hands out the cache's allocation.
    pub bytes: Arc<[u8]>,
    /// How the request was satisfied.
    pub served_from: ServedFrom,
    /// Simulated processing time in nanoseconds, charged by the
    /// [`RewriteCost`] model (zero for cache hits).
    pub processing_ns: u64,
}

/// One audit-trail record.
#[derive(Debug, Clone)]
pub struct ProxyAuditRecord {
    /// Requested URL.
    pub url: String,
    /// Requesting client.
    pub client: String,
    /// How the request was satisfied.
    pub served_from: ServedFrom,
    /// Bytes served.
    pub bytes: usize,
    /// Simulated processing time in nanoseconds (parse + filters +
    /// generate, charged by the [`RewriteCost`] model; zero for cache
    /// hits).
    pub processing_ns: u64,
}

/// Aggregate proxy statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProxyStats {
    /// Requests handled.
    pub requests: u64,
    /// Bytes fetched from origins.
    pub bytes_fetched: u64,
    /// Bytes served to clients.
    pub bytes_served: u64,
    /// Classes rewritten (parse + pipeline + generate executed).
    pub rewrites: u64,
    /// Total simulated rewrite time in nanoseconds.
    pub rewrite_ns: u64,
    /// Requests satisfied by a peer shard's cache instead of a rewrite.
    pub peer_fills: u64,
    /// Rewrites offered to their home shard after completing locally.
    pub peer_offers: u64,
    /// IR packages compiled by the attached [`IrProducer`].
    pub ir_compiles: u64,
    /// `ir://` requests served from the cache.
    pub ir_served: u64,
    /// Cache entries ingested from a migration stream (shard join).
    pub migrate_ingests: u64,
}

/// Pre-registered telemetry handles for the request hot path: resolved
/// once at wiring so recording is a relaxed atomic op, never a registry
/// lookup.
struct ProxyMetrics {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    cache_hit_memory: Arc<Counter>,
    cache_hit_disk: Arc<Counter>,
    cache_miss: Arc<Counter>,
    peer_fills: Arc<Counter>,
    peer_offers: Arc<Counter>,
    rewrites: Arc<Counter>,
    rewrite_bytes_in: Arc<Counter>,
    rewrite_bytes_out: Arc<Counter>,
    ir_compiles: Arc<Counter>,
    ir_served: Arc<Counter>,
    ir_bytes: Arc<Counter>,
    ir_compile_cycles: Arc<Counter>,
    migrate_ingests: Arc<Counter>,
    request_ns: Arc<Histogram>,
    origin_fetch_ns: Arc<Histogram>,
    ir_lower_ns: Arc<Histogram>,
}

impl ProxyMetrics {
    fn register(telemetry: &Telemetry) -> ProxyMetrics {
        let r = telemetry.registry();
        ProxyMetrics {
            requests: r.counter("proxy.requests"),
            errors: r.counter("proxy.errors"),
            cache_hit_memory: r.counter("proxy.cache.hit.memory"),
            cache_hit_disk: r.counter("proxy.cache.hit.disk"),
            cache_miss: r.counter("proxy.cache.miss"),
            peer_fills: r.counter("proxy.peer.fills"),
            peer_offers: r.counter("proxy.peer.offers"),
            rewrites: r.counter("proxy.rewrites"),
            rewrite_bytes_in: r.counter("proxy.rewrite.bytes_in"),
            rewrite_bytes_out: r.counter("proxy.rewrite.bytes_out"),
            ir_compiles: r.counter("exec.ir.compiles"),
            ir_served: r.counter("exec.ir.served"),
            ir_bytes: r.counter("exec.ir.bytes"),
            ir_compile_cycles: r.counter("exec.ir.compile_cycles"),
            migrate_ingests: r.counter("proxy.migrate.ingests"),
            request_ns: r.histogram("proxy.request_ns"),
            origin_fetch_ns: r.histogram("proxy.origin.fetch_ns"),
            ir_lower_ns: r.histogram("exec.lower_ns"),
        }
    }
}

/// The proxy.
pub struct Proxy {
    origin: Box<dyn CodeOrigin>,
    pipeline: Pipeline,
    cache: Mutex<RewriteCache>,
    caching: bool,
    signer: Option<Signer>,
    rewrite_cost: RewriteCost,
    peer: parking_lot::RwLock<Option<Arc<dyn PeerCache>>>,
    ir_producer: parking_lot::RwLock<Option<Arc<dyn IrProducer>>>,
    audit: Mutex<Vec<ProxyAuditRecord>>,
    stats: Mutex<ProxyStats>,
    telemetry: Arc<Telemetry>,
    metrics: ProxyMetrics,
}

impl std::fmt::Debug for Proxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proxy")
            .field("pipeline", &self.pipeline)
            .field("caching", &self.caching)
            .finish()
    }
}

impl Proxy {
    /// Creates a proxy.
    ///
    /// `cache_memory_bytes` bounds the memory tier; pass `caching = false`
    /// to disable the cache entirely (the worst-case configuration of the
    /// §4.2 scaling experiment).
    pub fn new(
        origin: Box<dyn CodeOrigin>,
        pipeline: Pipeline,
        cache_memory_bytes: usize,
        caching: bool,
        signer: Option<Signer>,
    ) -> Proxy {
        let telemetry = Arc::new(Telemetry::new("proxy"));
        telemetry.recorder().set_node("proxy");
        let metrics = ProxyMetrics::register(&telemetry);
        Proxy {
            origin,
            pipeline,
            cache: Mutex::new(RewriteCache::new(cache_memory_bytes)),
            caching,
            signer,
            rewrite_cost: RewriteCost::default(),
            peer: parking_lot::RwLock::new(None),
            ir_producer: parking_lot::RwLock::new(None),
            audit: Mutex::new(Vec::new()),
            stats: Mutex::new(ProxyStats::default()),
            telemetry,
            metrics,
        }
    }

    /// Joins this proxy to a fleet: on local cache misses it consults
    /// `peer` before rewriting and offers finished rewrites back.
    /// Installable after construction because peer links need this
    /// proxy's own server address, which exists only once it is bound.
    pub fn set_peer_cache(&self, peer: Arc<dyn PeerCache>) {
        *self.peer.write() = Some(peer);
    }

    /// Detaches the proxy from its fleet (used at shard shutdown).
    pub fn clear_peer_cache(&self) {
        *self.peer.write() = None;
    }

    /// Attaches the compiler stage for the optimizing execution tier:
    /// every future rewrite also produces an IR package, cached under
    /// [`ir_key`] of the served bytes and fetchable as `ir://<hex>`.
    pub fn set_ir_producer(&self, producer: Arc<dyn IrProducer>) {
        *self.ir_producer.write() = Some(producer);
    }

    /// Builder-style variant of [`Proxy::set_ir_producer`].
    pub fn with_ir_producer(self, producer: Arc<dyn IrProducer>) -> Proxy {
        self.set_ir_producer(producer);
        self
    }

    /// Replaces the rewrite-cost model (builder style).
    pub fn with_rewrite_cost(mut self, cost: RewriteCost) -> Proxy {
        self.rewrite_cost = cost;
        self
    }

    /// Replaces the telemetry plane (builder style). Used to rename a
    /// shard's plane (`"shard0"`, `"shard1"`, …) or to share one plane
    /// between components that should report as one node.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Proxy {
        telemetry.recorder().set_node(telemetry.node());
        self.metrics = ProxyMetrics::register(&telemetry);
        self.telemetry = telemetry;
        self
    }

    /// This proxy's telemetry plane (servers answer `STATS_REQUEST`
    /// frames from it).
    pub fn telemetry(&self) -> Arc<Telemetry> {
        self.telemetry.clone()
    }

    /// The active rewrite-cost model.
    pub fn rewrite_cost(&self) -> RewriteCost {
        self.rewrite_cost
    }

    /// Whether this proxy signs served code.
    pub fn signs(&self) -> bool {
        self.signer.is_some()
    }

    /// Handles one code request, returning just the bytes.
    pub fn handle_request(&self, url: &str, ctx: &RequestContext) -> Result<Vec<u8>, ProxyError> {
        self.handle_request_detailed(url, ctx)
            .map(|r| r.bytes.to_vec())
    }

    /// Handles one code request with provenance details (clients use the
    /// tier and processing time for transfer-latency accounting).
    pub fn handle_request_detailed(
        &self,
        url: &str,
        ctx: &RequestContext,
    ) -> Result<ServedResponse, ProxyError> {
        let wall = Instant::now();
        self.metrics.requests.inc();
        // When the request carries a trace, the whole serve is one
        // "proxy.handle" span; its id is allocated up front so the
        // per-stage and origin-fetch child spans can parent under it.
        let handle = ctx
            .trace
            .map(|t| (t, SpanId::generate(), self.telemetry.recorder().now_ns()));
        let result = self.serve(url, ctx, handle.map(|(t, id, _)| (t.trace, id)));
        if result.is_err() {
            self.metrics.errors.inc();
        }
        self.metrics
            .request_ns
            .record(wall.elapsed().as_nanos() as u64);
        if let Some((t, id, start)) = handle {
            let rec = self.telemetry.recorder();
            let duration = rec.now_ns().saturating_sub(start);
            rec.record_span(t.trace, id, t.parent, "proxy.handle", start, duration);
        }
        result
    }

    /// The serve path proper; `span` is `(trace, parent-for-children)`
    /// when the request is traced.
    fn serve(
        &self,
        url: &str,
        ctx: &RequestContext,
        span: Option<(dvm_telemetry::TraceId, SpanId)>,
    ) -> Result<ServedResponse, ProxyError> {
        self.stats.lock().requests += 1;
        if self.caching {
            if let Some((bytes, tier)) = self.cache.lock().get(url) {
                let served_from = match tier {
                    CacheTier::Memory => {
                        self.metrics.cache_hit_memory.inc();
                        ServedFrom::MemoryCache
                    }
                    CacheTier::Disk => {
                        self.metrics.cache_hit_disk.inc();
                        ServedFrom::DiskCache
                    }
                };
                if url.starts_with(IR_SCHEME) {
                    self.stats.lock().ir_served += 1;
                    self.metrics.ir_served.inc();
                }
                self.finish(url, ctx, &bytes, served_from, 0);
                return Ok(ServedResponse {
                    bytes,
                    served_from,
                    processing_ns: 0,
                });
            }
            self.metrics.cache_miss.inc();
        }

        // Local miss: before paying the rewrite cost, ask the url's home
        // shard whether the fleet already rewrote it.
        if self.caching {
            let peer = self.peer.read().clone();
            if let Some(peer) = peer {
                if let Some(bytes) = peer.fetch_from_home(url) {
                    let bytes: Arc<[u8]> = bytes.into();
                    self.stats.lock().peer_fills += 1;
                    self.metrics.peer_fills.inc();
                    // Hot here (a client just asked), so fill the memory
                    // tier — unlike unsolicited offers, which land on disk.
                    self.cache.lock().put_tier(
                        url.to_owned(),
                        Arc::clone(&bytes),
                        CacheTier::Memory,
                    );
                    if url.starts_with(IR_SCHEME) {
                        self.stats.lock().ir_served += 1;
                        self.metrics.ir_served.inc();
                    }
                    self.finish(url, ctx, &bytes, ServedFrom::Peer, 0);
                    return Ok(ServedResponse {
                        bytes,
                        served_from: ServedFrom::Peer,
                        processing_ns: 0,
                    });
                }
            }
        }

        // IR packages only exist as cache entries (they are produced as a
        // side effect of rewriting their class); there is no origin to
        // fetch them from and nothing to rewrite.
        if url.starts_with(IR_SCHEME) {
            return Err(ProxyError::NotFound(url.to_owned()));
        }

        let recorder = self.telemetry.recorder();
        let fetch_start = recorder.now_ns();
        let original = self
            .origin
            .fetch(url)
            .ok_or_else(|| ProxyError::NotFound(url.to_owned()))?;
        let fetch_ns = recorder.now_ns().saturating_sub(fetch_start);
        self.metrics.origin_fetch_ns.record(fetch_ns);
        if let Some((trace, parent)) = span {
            recorder.record_span(
                trace,
                SpanId::generate(),
                parent,
                "origin.fetch",
                fetch_start,
                fetch_ns,
            );
        }
        self.stats.lock().bytes_fetched += original.len() as u64;
        self.metrics.rewrite_bytes_in.add(original.len() as u64);

        // Parse once for all static services.
        let class = ClassFile::parse(&original).map_err(|e| ProxyError::Parse(e.to_string()))?;
        let registry = self.telemetry.registry();
        let mut rewritten = self
            .pipeline
            .run_traced(class, ctx, &mut |stage, elapsed_ns| {
                registry
                    .histogram(&format!("proxy.stage.{stage}_ns"))
                    .record(elapsed_ns);
                if let Some((trace, parent)) = span {
                    let end = recorder.now_ns();
                    recorder.record_span(
                        trace,
                        SpanId::generate(),
                        parent,
                        &format!("stage.{stage}"),
                        end.saturating_sub(elapsed_ns),
                        elapsed_ns,
                    );
                }
            })
            .map_err(ProxyError::Filter)?;
        // Generate once.
        let mut bytes = rewritten
            .to_bytes()
            .map_err(|e| ProxyError::Parse(e.to_string()))?;
        // Compile the rewritten payload for the optimizing execution
        // tier before the signature is attached: the IR must describe the
        // class the client will actually link.
        let ir = {
            let producer = self.ir_producer.read().clone();
            producer.and_then(|p| {
                let start = recorder.now_ns();
                let product = p.produce(&bytes);
                let lower_ns = recorder.now_ns().saturating_sub(start);
                product.map(|pr| (pr, start, lower_ns))
            })
        };
        if let Some(signer) = &self.signer {
            bytes = signer.attach(bytes);
        }
        // Charge deterministic, machine-independent processing time.
        let elapsed = self.rewrite_cost.charge_ns(original.len() as u64);
        {
            let mut s = self.stats.lock();
            s.rewrites += 1;
            s.rewrite_ns += elapsed;
        }
        self.metrics.rewrites.inc();
        self.metrics.rewrite_bytes_out.add(bytes.len() as u64);
        let bytes: Arc<[u8]> = bytes.into();
        if self.caching {
            self.cache.lock().put(url.to_owned(), Arc::clone(&bytes));
            let peer = self.peer.read().clone();
            if let Some(peer) = peer {
                // One organization-wide rewrite should populate the fleet:
                // push the result to the url's home shard.
                if peer.offer_to_home(url, &bytes) {
                    self.stats.lock().peer_offers += 1;
                    self.metrics.peer_offers.inc();
                }
            }
        }
        if let Some((product, start, lower_ns)) = ir {
            self.install_ir(&bytes, product, start, lower_ns, span);
        }
        self.finish(url, ctx, &bytes, ServedFrom::Rewritten, elapsed);
        Ok(ServedResponse {
            bytes,
            served_from: ServedFrom::Rewritten,
            processing_ns: elapsed,
        })
    }

    /// Caches a freshly produced IR package under the served payload's
    /// `ir://` key, records the `exec.*` telemetry, and offers the
    /// package to the fleet like any other rewrite product.
    fn install_ir(
        &self,
        served_bytes: &Arc<[u8]>,
        product: IrProduct,
        start: u64,
        lower_ns: u64,
        span: Option<(dvm_telemetry::TraceId, SpanId)>,
    ) {
        let key = ir_key(served_bytes);
        self.stats.lock().ir_compiles += 1;
        self.metrics.ir_compiles.inc();
        self.metrics.ir_bytes.add(product.bytes.len() as u64);
        self.metrics.ir_compile_cycles.add(product.compile_cycles);
        self.metrics.ir_lower_ns.record(lower_ns);
        if let Some((trace, parent)) = span {
            let recorder = self.telemetry.recorder();
            let lower = SpanId::generate();
            recorder.record_span(trace, lower, parent, "exec.lower", start, lower_ns);
            // Attribute pass-pipeline work as children of the lowering
            // span; durations are the pipeline's deterministic work
            // units, not wall time.
            let mut at = start;
            for (pass, work) in &product.pass_work {
                recorder.record_span(
                    trace,
                    SpanId::generate(),
                    lower,
                    &format!("exec.opt.{pass}"),
                    at,
                    *work,
                );
                at = at.saturating_add(*work);
            }
        }
        if self.caching {
            // IR ships under the same signature regime as classes: the
            // optimized code is no less sensitive than the rewrites it
            // encodes.
            let wire = match &self.signer {
                Some(signer) => signer.attach(product.bytes),
                None => product.bytes,
            };
            let bytes: Arc<[u8]> = wire.into();
            self.cache.lock().put(key.clone(), Arc::clone(&bytes));
            let peer = self.peer.read().clone();
            if let Some(peer) = peer {
                if peer.offer_to_home(&key, &bytes) {
                    self.stats.lock().peer_offers += 1;
                    self.metrics.peer_offers.inc();
                }
            }
        }
    }

    fn finish(
        &self,
        url: &str,
        ctx: &RequestContext,
        bytes: &[u8],
        served_from: ServedFrom,
        processing_ns: u64,
    ) {
        self.stats.lock().bytes_served += bytes.len() as u64;
        self.audit.lock().push(ProxyAuditRecord {
            url: url.to_owned(),
            client: ctx.client.clone(),
            served_from,
            bytes: bytes.len(),
            processing_ns,
        });
    }

    /// Snapshot of the aggregate statistics.
    pub fn stats(&self) -> ProxyStats {
        *self.stats.lock()
    }

    /// Snapshot of the cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().stats
    }

    /// Probes the rewrite cache without touching hit/miss accounting or
    /// tier promotion: how a shard answers a peer's `PEER_GET`. Returns
    /// `None` when caching is disabled.
    pub fn cache_peek(&self, url: &str) -> Option<(Arc<[u8]>, CacheTier)> {
        if !self.caching {
            return None;
        }
        self.cache.lock().peek(url)
    }

    /// Inserts already-rewritten (signed) bytes into the given cache
    /// tier: how a shard ingests a peer's `PEER_PUT`. A no-op when
    /// caching is disabled. With a persistent store attached, a `Disk`
    /// fill lands durably — a peer's offer survives this shard's death.
    pub fn cache_fill(&self, url: &str, bytes: Vec<u8>, tier: CacheTier) {
        if !self.caching {
            return;
        }
        self.cache
            .lock()
            .put_tier(url.to_owned(), bytes.into(), tier);
    }

    /// Pages the cached population in ascending key order — up to `max`
    /// entries strictly after `after` (empty = from the start) plus a
    /// flag that is `true` when the range is exhausted. This is the
    /// source side of live cache migration: entries come from the
    /// unbounded disk tier (the full population), persistent envelopes
    /// are verified before export, and nothing here touches hit/miss
    /// accounting or tier promotion. Empty-and-complete when caching is
    /// disabled.
    pub fn cache_export_after(&self, after: &str, max: usize) -> CacheExportPage {
        if !self.caching {
            return (Vec::new(), true);
        }
        self.cache.lock().export_after(after, max)
    }

    /// Ingests one entry from a migration stream (a joining shard
    /// receiving its key range, or a survivor absorbing a drain). Lands
    /// on the disk tier like a peer offer — migration must not evict
    /// the hot set — and is counted separately so the chaos invariants
    /// can tell migrated keys from peer fills.
    pub fn migrate_ingest(&self, url: &str, bytes: Vec<u8>) {
        if !self.caching {
            return;
        }
        self.cache
            .lock()
            .put_tier(url.to_owned(), bytes.into(), CacheTier::Disk);
        self.stats.lock().migrate_ingests += 1;
        self.metrics.migrate_ingests.inc();
    }

    /// Backs this proxy's disk cache tier with a persistent store: what
    /// is cached from now on (and anything already cached) survives a
    /// kill, and whatever a previous life of this shard stored becomes
    /// servable again without re-rewriting. The store joins this
    /// proxy's telemetry plane.
    pub fn attach_store(&self, mut store: Store) {
        store.set_telemetry(&self.telemetry);
        self.cache.lock().attach_store(store);
    }

    /// The persistent store's counters, when [`Proxy::attach_store`]
    /// has been called (`None` for an ephemeral cache).
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.cache.lock().store_stats()
    }

    /// Fsyncs the persistent store (graceful-shutdown path; a no-op
    /// without one). Crash-safety does *not* depend on this.
    pub fn flush_store(&self) {
        if let Some(store) = self.cache.lock().store_mut() {
            let _ = store.flush();
        }
    }

    /// Snapshot of the audit trail.
    pub fn audit_trail(&self) -> Vec<ProxyAuditRecord> {
        self.audit.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::NullFilter;
    use dvm_classfile::ClassBuilder;

    fn origin_with(name: &str, url: &str) -> MapOrigin {
        let mut cf = ClassBuilder::new(name).build();
        let mut o = MapOrigin::new();
        o.insert(url, cf.to_bytes().unwrap());
        o
    }

    fn null_pipeline() -> Pipeline {
        let mut p = Pipeline::new();
        p.push(Box::new(NullFilter));
        p
    }

    #[test]
    fn rewrites_then_serves_from_cache() {
        let proxy = Proxy::new(
            Box::new(origin_with("t/A", "http://x/A.class")),
            null_pipeline(),
            1 << 20,
            true,
            None,
        );
        let ctx = RequestContext {
            client: "c1".into(),
            ..Default::default()
        };
        let b1 = proxy.handle_request("http://x/A.class", &ctx).unwrap();
        let b2 = proxy.handle_request("http://x/A.class", &ctx).unwrap();
        assert_eq!(b1, b2);
        let stats = proxy.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.rewrites, 1);
        let audit = proxy.audit_trail();
        assert_eq!(audit[0].served_from, ServedFrom::Rewritten);
        assert_eq!(audit[1].served_from, ServedFrom::MemoryCache);
    }

    #[test]
    fn caching_disabled_rewrites_every_time() {
        let proxy = Proxy::new(
            Box::new(origin_with("t/A", "u")),
            null_pipeline(),
            1 << 20,
            false,
            None,
        );
        let ctx = RequestContext::default();
        proxy.handle_request("u", &ctx).unwrap();
        proxy.handle_request("u", &ctx).unwrap();
        assert_eq!(proxy.stats().rewrites, 2);
    }

    #[test]
    fn missing_resource_errors() {
        let proxy = Proxy::new(
            Box::new(MapOrigin::new()),
            null_pipeline(),
            1024,
            true,
            None,
        );
        assert!(matches!(
            proxy.handle_request("nope", &RequestContext::default()),
            Err(ProxyError::NotFound(_))
        ));
    }

    #[test]
    fn signed_output_verifies_and_round_trips() {
        let signer = Signer::new(b"org");
        let proxy = Proxy::new(
            Box::new(origin_with("t/S", "u")),
            null_pipeline(),
            1024,
            false,
            Some(signer.clone()),
        );
        let bytes = proxy
            .handle_request("u", &RequestContext::default())
            .unwrap();
        let (check, payload) = signer.detach(&bytes);
        assert_eq!(check, crate::sign::SignatureCheck::Valid);
        let parsed = ClassFile::parse(payload.unwrap()).unwrap();
        assert_eq!(parsed.name().unwrap(), "t/S");
    }

    #[test]
    fn garbage_input_is_a_parse_error() {
        let mut o = MapOrigin::new();
        o.insert("junk", vec![1, 2, 3, 4]);
        let proxy = Proxy::new(Box::new(o), null_pipeline(), 1024, true, None);
        assert!(matches!(
            proxy.handle_request("junk", &RequestContext::default()),
            Err(ProxyError::Parse(_))
        ));
    }

    #[test]
    fn rewrite_time_is_deterministic_not_wall_clock() {
        let make = || {
            Proxy::new(
                Box::new(origin_with("t/D", "u")),
                null_pipeline(),
                1 << 20,
                false,
                None,
            )
        };
        let ctx = RequestContext::default();
        let a = make().handle_request_detailed("u", &ctx).unwrap();
        let b = make().handle_request_detailed("u", &ctx).unwrap();
        assert_eq!(
            a.processing_ns, b.processing_ns,
            "identical inputs, identical charge"
        );
        assert!(a.processing_ns > 0);
        // The charge follows the cost model exactly.
        let origin = origin_with("t/D", "u");
        let original_len = origin.fetch("u").unwrap().len() as u64;
        assert_eq!(
            a.processing_ns,
            RewriteCost::default().charge_ns(original_len)
        );
    }

    struct FakePeer {
        hit: Option<Vec<u8>>,
        fills: std::sync::atomic::AtomicU64,
        offers: Mutex<Vec<String>>,
    }

    impl PeerCache for FakePeer {
        fn fetch_from_home(&self, _url: &str) -> Option<Vec<u8>> {
            if self.hit.is_some() {
                self.fills.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
            self.hit.clone()
        }
        fn offer_to_home(&self, url: &str, _bytes: &[u8]) -> bool {
            self.offers.lock().push(url.to_owned());
            true
        }
    }

    #[test]
    fn peer_hit_skips_the_rewrite_and_fills_the_local_cache() {
        let proxy = Proxy::new(
            Box::new(origin_with("t/P", "u")),
            null_pipeline(),
            1 << 20,
            true,
            None,
        );
        let canned = b"peer-rewritten".to_vec();
        let peer = Arc::new(FakePeer {
            hit: Some(canned.clone()),
            fills: Default::default(),
            offers: Mutex::new(Vec::new()),
        });
        proxy.set_peer_cache(peer.clone());
        let ctx = RequestContext::default();
        let r = proxy.handle_request_detailed("u", &ctx).unwrap();
        assert_eq!(r.served_from, ServedFrom::Peer);
        assert_eq!(&r.bytes[..], &canned[..]);
        assert_eq!(r.processing_ns, 0, "no rewrite was paid");
        assert_eq!(proxy.stats().rewrites, 0);
        assert_eq!(proxy.stats().peer_fills, 1);
        // The fill landed in the local cache: the next request is a plain
        // memory hit, no second peer round trip.
        let r2 = proxy.handle_request_detailed("u", &ctx).unwrap();
        assert_eq!(r2.served_from, ServedFrom::MemoryCache);
        assert_eq!(peer.fills.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn peer_miss_rewrites_and_offers_to_home() {
        let proxy = Proxy::new(
            Box::new(origin_with("t/Q", "u")),
            null_pipeline(),
            1 << 20,
            true,
            None,
        );
        let peer = Arc::new(FakePeer {
            hit: None,
            fills: Default::default(),
            offers: Mutex::new(Vec::new()),
        });
        proxy.set_peer_cache(peer.clone());
        proxy
            .handle_request_detailed("u", &RequestContext::default())
            .unwrap();
        assert_eq!(proxy.stats().rewrites, 1);
        assert_eq!(proxy.stats().peer_offers, 1);
        assert_eq!(*peer.offers.lock(), vec!["u".to_owned()]);
    }

    #[test]
    fn cache_peek_and_fill_round_trip() {
        let proxy = Proxy::new(
            Box::new(MapOrigin::new()),
            null_pipeline(),
            1 << 20,
            true,
            None,
        );
        assert!(proxy.cache_peek("u").is_none());
        proxy.cache_fill("u", vec![1, 2, 3], crate::cache::CacheTier::Disk);
        let (bytes, tier) = proxy.cache_peek("u").unwrap();
        assert_eq!(&bytes[..], &[1, 2, 3][..]);
        assert_eq!(tier, crate::cache::CacheTier::Disk);
        // Peer traffic leaves the local hit/miss accounting untouched.
        assert_eq!(proxy.cache_stats(), crate::cache::CacheStats::default());
    }

    #[test]
    fn traced_request_records_spans_and_counters() {
        use dvm_telemetry::{TraceContext, TraceId};
        let proxy = Proxy::new(
            Box::new(origin_with("t/T", "u")),
            null_pipeline(),
            1 << 20,
            true,
            None,
        );
        let trace = TraceId::generate();
        let ctx = RequestContext {
            trace: Some(TraceContext {
                trace,
                parent: SpanId::NONE,
            }),
            ..Default::default()
        };
        proxy.handle_request("u", &ctx).unwrap();
        proxy.handle_request("u", &ctx).unwrap();

        let spans = proxy.telemetry().recorder().for_trace(trace);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        // Rewrite: origin fetch + one stage + the handle wrapper; the
        // cache hit adds a second handle span.
        assert!(names.contains(&"origin.fetch"), "{names:?}");
        assert!(names.contains(&"stage.null"), "{names:?}");
        assert_eq!(names.iter().filter(|n| **n == "proxy.handle").count(), 2);
        // Children parent under the handle span of the same trace.
        let handle = spans.iter().find(|s| s.name == "proxy.handle").unwrap();
        let stage = spans.iter().find(|s| s.name == "stage.null").unwrap();
        assert_eq!(stage.parent, handle.id);

        let snap = proxy.telemetry().registry().snapshot();
        assert_eq!(snap.counter("proxy.requests"), 2);
        assert_eq!(snap.counter("proxy.rewrites"), 1);
        assert_eq!(snap.counter("proxy.cache.miss"), 1);
        assert_eq!(snap.counter("proxy.cache.hit.memory"), 1);
        assert!(snap.counter("proxy.rewrite.bytes_in") > 0);
        assert_eq!(snap.histograms["proxy.request_ns"].count, 2);
        assert_eq!(snap.histograms["proxy.stage.null_ns"].count, 1);
    }

    #[test]
    fn attached_store_makes_the_proxy_restart_warm() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dvm-proxy-warm-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let make = || {
            Proxy::new(
                Box::new(origin_with("t/W", "u")),
                null_pipeline(),
                1 << 20,
                true,
                Some(Signer::new(b"org")),
            )
        };
        let ctx = RequestContext::default();

        let proxy = make();
        proxy
            .attach_store(dvm_store::Store::open(&dir, dvm_store::StoreConfig::default()).unwrap());
        let first = proxy.handle_request_detailed("u", &ctx).unwrap();
        assert_eq!(first.served_from, ServedFrom::Rewritten);
        // SIGKILL-equivalent: no flush, no graceful shutdown.
        drop(proxy);

        let proxy = make();
        proxy
            .attach_store(dvm_store::Store::open(&dir, dvm_store::StoreConfig::default()).unwrap());
        let again = proxy.handle_request_detailed("u", &ctx).unwrap();
        assert_eq!(
            again.served_from,
            ServedFrom::DiskCache,
            "restart must be warm"
        );
        assert_eq!(proxy.stats().rewrites, 0, "no re-rewrite after restart");
        assert_eq!(&again.bytes[..], &first.bytes[..]);
        let stats = proxy.store_stats().unwrap();
        assert!(stats.recovered_records >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    struct CannedProducer;

    impl IrProducer for CannedProducer {
        fn produce(&self, class_bytes: &[u8]) -> Option<IrProduct> {
            Some(IrProduct {
                bytes: vec![0xd0, class_bytes[0]],
                pass_work: vec![("fold".to_owned(), 3), ("dce".to_owned(), 2)],
                compile_cycles: 1_000,
            })
        }
    }

    #[test]
    fn rewrites_produce_cached_ir_packages() {
        let proxy = Proxy::new(
            Box::new(origin_with("t/I", "u")),
            null_pipeline(),
            1 << 20,
            true,
            Some(Signer::new(b"org")),
        );
        proxy.set_ir_producer(Arc::new(CannedProducer));
        let ctx = RequestContext::default();
        let served = proxy.handle_request_detailed("u", &ctx).unwrap();
        assert_eq!(proxy.stats().ir_compiles, 1);

        // The client derives the key from the bytes it received.
        let key = ir_key(&served.bytes);
        let ir = proxy.handle_request_detailed(&key, &ctx).unwrap();
        assert_eq!(ir.served_from, ServedFrom::MemoryCache);
        // The package is signed like any served payload; the payload is
        // the producer's bytes (0xCA is the class-file magic it echoed).
        let signer = Signer::new(b"org");
        let (check, payload) = signer.detach(&ir.bytes);
        assert_eq!(check, crate::sign::SignatureCheck::Valid);
        assert_eq!(payload.unwrap(), &[0xd0, 0xca][..]);
        assert_eq!(ir.processing_ns, 0, "no re-lowering on the serve path");
        assert_eq!(proxy.stats().ir_served, 1);

        // A cached class serve does not recompile.
        proxy.handle_request_detailed("u", &ctx).unwrap();
        assert_eq!(proxy.stats().ir_compiles, 1);

        let snap = proxy.telemetry().registry().snapshot();
        assert_eq!(snap.counter("exec.ir.compiles"), 1);
        assert_eq!(snap.counter("exec.ir.served"), 1);
        assert_eq!(snap.counter("exec.ir.compile_cycles"), 1_000);
    }

    #[test]
    fn unknown_ir_key_is_not_found_not_a_rewrite() {
        let proxy = Proxy::new(
            Box::new(origin_with("t/I", "u")),
            null_pipeline(),
            1 << 20,
            true,
            None,
        );
        proxy.set_ir_producer(Arc::new(CannedProducer));
        let miss = proxy.handle_request("ir://deadbeef", &RequestContext::default());
        assert!(matches!(miss, Err(ProxyError::NotFound(_))));
        assert_eq!(proxy.stats().rewrites, 0);
    }

    #[test]
    fn traced_rewrite_records_exec_spans() {
        use dvm_telemetry::{TraceContext, TraceId};
        let proxy = Proxy::new(
            Box::new(origin_with("t/I", "u")),
            null_pipeline(),
            1 << 20,
            true,
            None,
        );
        proxy.set_ir_producer(Arc::new(CannedProducer));
        let trace = TraceId::generate();
        let ctx = RequestContext {
            trace: Some(TraceContext {
                trace,
                parent: SpanId::NONE,
            }),
            ..Default::default()
        };
        proxy.handle_request("u", &ctx).unwrap();
        let spans = proxy.telemetry().recorder().for_trace(trace);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"exec.lower"), "{names:?}");
        assert!(names.contains(&"exec.opt.fold"), "{names:?}");
        assert!(names.contains(&"exec.opt.dce"), "{names:?}");
        let lower = spans.iter().find(|s| s.name == "exec.lower").unwrap();
        let fold = spans.iter().find(|s| s.name == "exec.opt.fold").unwrap();
        assert_eq!(fold.parent, lower.id);
    }

    #[test]
    fn origin_fetches_share_one_allocation() {
        let origin = origin_with("t/A", "u");
        let a = origin.fetch("u").unwrap();
        let b = origin.fetch("u").unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_clients_share_one_proxy() {
        use std::sync::Arc;
        let proxy = Arc::new(Proxy::new(
            Box::new(origin_with("t/C", "u")),
            null_pipeline(),
            1 << 20,
            true,
            None,
        ));
        let mut handles = Vec::new();
        for i in 0..8 {
            let p = proxy.clone();
            handles.push(std::thread::spawn(move || {
                let ctx = RequestContext {
                    client: format!("c{i}"),
                    ..Default::default()
                };
                for _ in 0..50 {
                    p.handle_request("u", &ctx).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(proxy.stats().requests, 400);
        assert_eq!(proxy.stats().rewrites, 1, "only the first request rewrites");
    }
}
