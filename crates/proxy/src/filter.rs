//! The stackable code-transformation filter API.
//!
//! "An internal filtering API allows the logically separate services ... to
//! be composed on the proxy host. Parsing and code generation are performed
//! only once for all static services, while structuring the services as
//! independent code-transformation filters enables them to be stacked
//! according to site-specific requirements." (§3)
//!
//! Filters receive a parsed [`ClassFile`], never bytes: the proxy parses
//! once at the head of the pipeline and serializes once at its tail.

use std::fmt;

use dvm_classfile::ClassFile;
use dvm_telemetry::TraceContext;

/// Per-request context threaded through the pipeline.
#[derive(Debug, Clone, Default)]
pub struct RequestContext {
    /// Requesting client identifier.
    pub client: String,
    /// Principal the code will run as (chooses the security SID).
    pub principal: String,
    /// Source URL of the code.
    pub url: String,
    /// Distributed-trace context, when the request arrived with one
    /// (spans recorded while serving it parent under `trace.parent`).
    pub trace: Option<TraceContext>,
}

/// A filter failure (converted from service errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterError {
    /// Filter that failed.
    pub filter: String,
    /// Explanation.
    pub reason: String,
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "filter {:?} failed: {}", self.filter, self.reason)
    }
}

impl std::error::Error for FilterError {}

/// A code-transformation filter. Implementations must be shareable across
/// proxy worker threads; internal mutability is the implementation's
/// responsibility.
pub trait Filter: Send + Sync {
    /// Short name for audit trails and diagnostics.
    fn name(&self) -> &str;

    /// Transforms one class.
    fn apply(&self, class: ClassFile, ctx: &RequestContext) -> Result<ClassFile, FilterError>;
}

/// The identity filter: the "null proxy" configuration used for the
/// monolithic baseline measurements in §4.1.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullFilter;

impl Filter for NullFilter {
    fn name(&self) -> &str {
        "null"
    }

    fn apply(&self, class: ClassFile, _ctx: &RequestContext) -> Result<ClassFile, FilterError> {
        Ok(class)
    }
}

/// A stack of filters applied in order.
pub struct Pipeline {
    filters: Vec<Box<dyn Filter>>,
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.filters.iter().map(|x| x.name()).collect();
        write!(f, "Pipeline({names:?})")
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new()
    }
}

impl Pipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Pipeline {
        Pipeline {
            filters: Vec::new(),
        }
    }

    /// Appends a filter (site-specific stacking order).
    pub fn push(&mut self, filter: Box<dyn Filter>) {
        self.filters.push(filter);
    }

    /// Filter names in order.
    pub fn names(&self) -> Vec<&str> {
        self.filters.iter().map(|f| f.name()).collect()
    }

    /// Number of filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// Returns `true` when the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Runs the class through every filter.
    pub fn run(&self, class: ClassFile, ctx: &RequestContext) -> Result<ClassFile, FilterError> {
        self.run_traced(class, ctx, &mut |_, _| {})
    }

    /// [`Pipeline::run`] with a per-stage observer: after each filter
    /// completes, `observe(name, elapsed_ns)` is called with its
    /// wall-clock duration. The proxy uses this to feed per-stage
    /// latency histograms and trace spans without the pipeline knowing
    /// anything about telemetry.
    pub fn run_traced(
        &self,
        mut class: ClassFile,
        ctx: &RequestContext,
        observe: &mut dyn FnMut(&str, u64),
    ) -> Result<ClassFile, FilterError> {
        for f in &self.filters {
            let t0 = std::time::Instant::now();
            class = f.apply(class, ctx)?;
            observe(f.name(), t0.elapsed().as_nanos() as u64);
        }
        Ok(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_classfile::{AccessFlags, ClassBuilder};

    struct MarkerFilter(&'static str);

    impl Filter for MarkerFilter {
        fn name(&self) -> &str {
            self.0
        }
        fn apply(
            &self,
            mut class: ClassFile,
            _: &RequestContext,
        ) -> Result<ClassFile, FilterError> {
            // Record application order via synthetic fields.
            let order = class.fields.len();
            let name = format!("__{}_{order}", self.0);
            let ni = class.pool.utf8(&name).map_err(|e| FilterError {
                filter: self.0.into(),
                reason: e.to_string(),
            })?;
            let di = class.pool.utf8("I").unwrap();
            class.fields.push(dvm_classfile::MemberInfo {
                access: AccessFlags::STATIC | AccessFlags::SYNTHETIC,
                name_index: ni,
                descriptor_index: di,
                attributes: vec![],
            });
            Ok(class)
        }
    }

    #[test]
    fn filters_stack_in_order() {
        let mut p = Pipeline::new();
        p.push(Box::new(MarkerFilter("verify")));
        p.push(Box::new(MarkerFilter("secure")));
        assert_eq!(p.names(), vec!["verify", "secure"]);
        let out = p
            .run(ClassBuilder::new("t/X").build(), &RequestContext::default())
            .unwrap();
        assert!(out.find_field("__verify_0").is_some());
        assert!(out.find_field("__secure_1").is_some());
    }

    #[test]
    fn null_filter_is_identity() {
        let mut p = Pipeline::new();
        p.push(Box::new(NullFilter));
        let input = ClassBuilder::new("t/Y").build();
        let out = p.run(input, &RequestContext::default()).unwrap();
        assert_eq!(out.name().unwrap(), "t/Y");
        assert!(out.fields.is_empty());
    }
}
