//! Keyed signatures binding proxy transformations to code.
//!
//! In environments where integrity between the proxy and clients cannot be
//! assumed, "digital signatures attached by the static service components
//! can ensure that the checks are inseparable from applications" (§2). We
//! use an HMAC-style nested keyed digest over MD5; clients redirect
//! incorrectly signed or unsigned code back to the centralized services.

use crate::md5::md5;

/// Length of an attached signature.
pub const TAG_LEN: usize = 16;

/// Signs and verifies class bytes with a shared organization key.
#[derive(Debug, Clone)]
pub struct Signer {
    key: Vec<u8>,
}

/// Outcome of checking a possibly-signed blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureCheck {
    /// Correctly signed by this organization's key.
    Valid,
    /// Carries a tag that does not verify.
    Invalid,
    /// Too short to carry a tag at all.
    Unsigned,
}

impl Signer {
    /// Creates a signer from the organization key.
    pub fn new(key: &[u8]) -> Signer {
        Signer { key: key.to_vec() }
    }

    /// Computes the tag for `data` (HMAC-style nested construction).
    pub fn tag(&self, data: &[u8]) -> [u8; TAG_LEN] {
        let mut inner = self.key.clone();
        inner.extend_from_slice(data);
        let inner_digest = md5(&inner);
        let mut outer = self.key.clone();
        outer.extend_from_slice(&inner_digest);
        md5(&outer)
    }

    /// Appends the tag to `data`, producing the signed wire form.
    pub fn attach(&self, mut data: Vec<u8>) -> Vec<u8> {
        let tag = self.tag(&data);
        data.extend_from_slice(&tag);
        data
    }

    /// Checks a signed blob, returning the verdict and (when valid) the
    /// payload without its tag.
    pub fn detach<'a>(&self, signed: &'a [u8]) -> (SignatureCheck, Option<&'a [u8]>) {
        if signed.len() < TAG_LEN {
            return (SignatureCheck::Unsigned, None);
        }
        let (payload, tag) = signed.split_at(signed.len() - TAG_LEN);
        if self.tag(payload) == tag {
            (SignatureCheck::Valid, Some(payload))
        } else {
            (SignatureCheck::Invalid, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_verifies() {
        let s = Signer::new(b"org-key");
        let signed = s.attach(b"class bytes".to_vec());
        let (check, payload) = s.detach(&signed);
        assert_eq!(check, SignatureCheck::Valid);
        assert_eq!(payload, Some(b"class bytes".as_ref()));
    }

    #[test]
    fn tampering_is_detected() {
        let s = Signer::new(b"org-key");
        let mut signed = s.attach(b"class bytes".to_vec());
        signed[3] ^= 0x40;
        let (check, payload) = s.detach(&signed);
        assert_eq!(check, SignatureCheck::Invalid);
        assert!(payload.is_none());
    }

    #[test]
    fn wrong_key_fails() {
        let s1 = Signer::new(b"org-key");
        let s2 = Signer::new(b"other-key");
        let signed = s1.attach(b"x".to_vec());
        assert_eq!(s2.detach(&signed).0, SignatureCheck::Invalid);
    }

    #[test]
    fn short_input_is_unsigned() {
        let s = Signer::new(b"k");
        assert_eq!(s.detach(&[1, 2, 3]).0, SignatureCheck::Unsigned);
    }
}
