//! The proxy's two-tier rewrite cache.
//!
//! "The proxy uses a cache to avoid rewriting code shared between clients"
//! (§3). Rewritten classes live in a bounded in-memory tier backed by an
//! unbounded on-disk tier; §4.1.2 measures a cached fetch at 338 ms, which
//! is the disk tier's access profile. Tier hit/miss accounting feeds the
//! cache ablation bench.
//!
//! Values are `Arc<[u8]>` end to end, so a memory-tier hit is a refcount
//! bump, not an allocation — the same representation `MapOrigin` uses.
//!
//! The disk tier has two implementations behind [`DiskTier`]: the
//! original in-process `HashMap` (dies with the process), and a
//! [`dvm_store::Store`]-backed persistent tier that survives a kill and
//! lets the shard restart warm. Persistent entries are stored as
//! `md5(payload) ‖ payload`, and the digest is re-verified on every
//! disk-tier load: a flipped byte, a stale file from another build, or
//! a partially recovered record degrades to a cache *miss* (the class
//! is re-rewritten) rather than ever serving wrong bytes.

use std::collections::HashMap;
use std::sync::Arc;

use dvm_store::{Store, StoreStats};

use crate::md5::md5;

/// One page of a key-ordered cache export: the entries plus a flag that
/// is `true` when the range is exhausted.
pub type CacheExportPage = (Vec<(String, Arc<[u8]>)>, bool);

/// Which tier served a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Served from memory.
    Memory,
    /// Served from the on-disk store.
    Disk,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Memory-tier hits.
    pub memory_hits: u64,
    /// Disk-tier hits (promoted back to memory).
    pub disk_hits: u64,
    /// Misses.
    pub misses: u64,
    /// Evictions from memory to disk.
    pub evictions: u64,
    /// Disk-tier loads rejected because the stored MD5 did not match
    /// the payload (treated as misses; the entry is purged).
    pub disk_load_rejects: u64,
    /// Persistent-store writes that failed (the entry stays
    /// memory-only; the cache fails open).
    pub store_errors: u64,
}

/// The unbounded tier: in-process (lost on kill) or store-backed
/// (recovered on restart).
enum DiskTier {
    Ephemeral(HashMap<String, Arc<[u8]>>),
    Persistent(Box<Store>),
}

impl std::fmt::Debug for DiskTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskTier::Ephemeral(m) => write!(f, "Ephemeral({} entries)", m.len()),
            DiskTier::Persistent(s) => write!(f, "Persistent({} entries)", s.len()),
        }
    }
}

/// Seals `value` for the persistent tier: 16-byte MD5 then payload.
fn seal(value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + value.len());
    out.extend_from_slice(&md5(value));
    out.extend_from_slice(value);
    out
}

/// Opens a sealed envelope, returning the payload only when the digest
/// still matches it.
fn unseal(mut sealed: Vec<u8>) -> Option<Vec<u8>> {
    if sealed.len() < 16 {
        return None;
    }
    let payload_digest = md5(&sealed[16..]);
    if payload_digest != sealed[..16] {
        return None;
    }
    sealed.drain(..16);
    Some(sealed)
}

/// A bounded-memory, unbounded-disk cache of rewritten class bytes.
#[derive(Debug)]
pub struct RewriteCache {
    memory: HashMap<String, Arc<[u8]>>,
    // Insertion-ordered keys for FIFO eviction.
    order: Vec<String>,
    disk: DiskTier,
    memory_capacity_bytes: usize,
    memory_bytes: usize,
    /// Statistics.
    pub stats: CacheStats,
}

impl RewriteCache {
    /// Creates a cache with the given memory-tier capacity in bytes and
    /// an ephemeral (in-process) disk tier.
    pub fn new(memory_capacity_bytes: usize) -> RewriteCache {
        RewriteCache {
            memory: HashMap::new(),
            order: Vec::new(),
            disk: DiskTier::Ephemeral(HashMap::new()),
            memory_capacity_bytes,
            memory_bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// Replaces the disk tier with a persistent store. Entries already
    /// in the ephemeral tier are written through (sealed) so nothing
    /// cached so far is lost; entries already in the store — a previous
    /// life of this shard — become visible immediately.
    pub fn attach_store(&mut self, mut store: Store) {
        if let DiskTier::Ephemeral(map) = &self.disk {
            let mut entries: Vec<(&String, &Arc<[u8]>)> = map.iter().collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            for (key, value) in entries {
                if store.put(key, &seal(value)).is_err() {
                    self.stats.store_errors += 1;
                }
            }
        }
        self.disk = DiskTier::Persistent(Box::new(store));
    }

    /// Whether the disk tier survives a process kill.
    pub fn is_persistent(&self) -> bool {
        matches!(self.disk, DiskTier::Persistent(_))
    }

    /// The persistent store's own counters, when one is attached.
    pub fn store_stats(&self) -> Option<StoreStats> {
        match &self.disk {
            DiskTier::Persistent(s) => Some(s.stats()),
            DiskTier::Ephemeral(_) => None,
        }
    }

    /// Mutable access to the attached store (telemetry wiring, flush).
    pub fn store_mut(&mut self) -> Option<&mut Store> {
        match &mut self.disk {
            DiskTier::Persistent(s) => Some(s),
            DiskTier::Ephemeral(_) => None,
        }
    }

    /// Reads `key` from the disk tier, verifying the envelope when
    /// persistent. A failed verification purges the entry and counts a
    /// `disk_load_rejects` — corrupt bytes are never returned.
    fn disk_get(&mut self, key: &str) -> Option<Arc<[u8]>> {
        match &mut self.disk {
            DiskTier::Ephemeral(map) => map.get(key).cloned(),
            DiskTier::Persistent(store) => {
                let sealed = store.get(key).ok().flatten()?;
                match unseal(sealed) {
                    Some(payload) => Some(Arc::from(payload)),
                    None => {
                        let _ = store.delete(key);
                        self.stats.disk_load_rejects += 1;
                        None
                    }
                }
            }
        }
    }

    fn disk_put(&mut self, key: &str, value: &Arc<[u8]>) {
        match &mut self.disk {
            DiskTier::Ephemeral(map) => {
                map.insert(key.to_owned(), Arc::clone(value));
            }
            DiskTier::Persistent(store) => {
                if store.put(key, &seal(value)).is_err() {
                    self.stats.store_errors += 1;
                }
            }
        }
    }

    fn disk_contains(&self, key: &str) -> bool {
        match &self.disk {
            DiskTier::Ephemeral(map) => map.contains_key(key),
            DiskTier::Persistent(store) => store.contains(key),
        }
    }

    /// Looks up `key`, reporting which tier answered. Disk hits are
    /// promoted to memory.
    pub fn get(&mut self, key: &str) -> Option<(Arc<[u8]>, CacheTier)> {
        if let Some(v) = self.memory.get(key) {
            self.stats.memory_hits += 1;
            return Some((Arc::clone(v), CacheTier::Memory));
        }
        if let Some(v) = self.disk_get(key) {
            self.stats.disk_hits += 1;
            self.insert_memory(key.to_owned(), Arc::clone(&v));
            return Some((v, CacheTier::Disk));
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts a rewritten class.
    pub fn put(&mut self, key: String, value: Arc<[u8]>) {
        self.disk_put(&key, &value);
        self.insert_memory(key, value);
    }

    /// Inserts into a chosen tier: `Memory` behaves like [`put`]
    /// (resident in both tiers), `Disk` stores on disk only without
    /// disturbing the memory tier's working set. Peer cache-fill uses
    /// the disk tier for unsolicited offers so a remote shard's rewrite
    /// cannot evict this shard's hot classes.
    ///
    /// [`put`]: RewriteCache::put
    pub fn put_tier(&mut self, key: String, value: Arc<[u8]>, tier: CacheTier) {
        match tier {
            CacheTier::Memory => self.put(key, value),
            CacheTier::Disk => self.disk_put(&key, &value),
        }
    }

    /// Looks up `key` without counting a hit or a miss (and without
    /// promoting disk hits): the peer-protocol probe, which must not
    /// skew the local hit/miss accounting that the cache ablations
    /// report. (Persistent disk reads still verify the envelope.)
    pub fn peek(&mut self, key: &str) -> Option<(Arc<[u8]>, CacheTier)> {
        if let Some(v) = self.memory.get(key) {
            return Some((Arc::clone(v), CacheTier::Memory));
        }
        self.disk_get(key).map(|v| (v, CacheTier::Disk))
    }

    /// Up to `max` cached entries in ascending key order, strictly after
    /// `after`, plus `true` when the range is exhausted. The disk tier
    /// is the full cached population (every `put` writes through), so
    /// exporting it never misses a memory-resident entry. Persistent
    /// envelopes are verified: an entry whose digest no longer matches
    /// is purged and skipped, counted in `disk_load_rejects` — corrupt
    /// bytes never migrate. No hit/miss accounting, no promotion.
    pub fn export_after(&mut self, after: &str, max: usize) -> CacheExportPage {
        match &mut self.disk {
            DiskTier::Ephemeral(map) => {
                let mut keys: Vec<&String> = map.keys().filter(|k| k.as_str() > after).collect();
                keys.sort();
                let complete = keys.len() <= max;
                let keys: Vec<String> = keys.into_iter().take(max).cloned().collect();
                let out = keys
                    .into_iter()
                    .map(|k| {
                        let v = map[&k].clone();
                        (k, v)
                    })
                    .collect();
                (out, complete)
            }
            DiskTier::Persistent(store) => {
                let mut rejects = 0;
                let result = match store.export_after(after, max) {
                    Ok((entries, complete)) => {
                        let mut out = Vec::with_capacity(entries.len());
                        for (k, sealed) in entries {
                            match unseal(sealed) {
                                Some(payload) => out.push((k, Arc::from(payload))),
                                None => {
                                    let _ = store.delete(&k);
                                    rejects += 1;
                                }
                            }
                        }
                        (out, complete)
                    }
                    Err(_) => {
                        self.stats.store_errors += 1;
                        (Vec::new(), true)
                    }
                };
                self.stats.disk_load_rejects += rejects;
                result
            }
        }
    }

    fn insert_memory(&mut self, key: String, value: Arc<[u8]>) {
        if self.memory.contains_key(&key) {
            return;
        }
        // An oversized value can never be memory-resident; admitting it
        // would evict the entire working set and then evict the value
        // itself — a full cache flush for nothing. It lives on disk only.
        if value.len() > self.memory_capacity_bytes {
            return;
        }
        self.memory_bytes += value.len();
        self.memory.insert(key.clone(), value);
        self.order.push(key);
        while self.memory_bytes > self.memory_capacity_bytes && !self.order.is_empty() {
            let victim = self.order.remove(0);
            if let Some(v) = self.memory.remove(&victim) {
                self.memory_bytes -= v.len();
                self.stats.evictions += 1;
            }
        }
    }

    /// Number of entries in the disk tier (total cached population).
    pub fn len(&self) -> usize {
        match &self.disk {
            DiskTier::Ephemeral(map) => map.len(),
            DiskTier::Persistent(store) => store.len(),
        }
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes resident in the memory tier.
    pub fn memory_resident_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Whether `key` is cached in any tier (no promotion, no stats).
    pub fn contains(&self, key: &str) -> bool {
        self.memory.contains_key(key) || self.disk_contains(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    use dvm_store::StoreConfig;

    fn bytes(v: Vec<u8>) -> Arc<[u8]> {
        v.into()
    }

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("dvm-cache-{tag}-{}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn memory_then_disk_tiering() {
        let mut c = RewriteCache::new(10);
        c.put("a".into(), bytes(vec![0; 8]));
        assert_eq!(c.get("a").unwrap().1, CacheTier::Memory);
        // Inserting b (8 bytes) evicts a from memory (capacity 10).
        c.put("b".into(), bytes(vec![0; 8]));
        assert_eq!(c.stats.evictions, 1);
        // a now comes from disk and is promoted.
        assert_eq!(c.get("a").unwrap().1, CacheTier::Disk);
        assert_eq!(c.get("a").unwrap().1, CacheTier::Memory);
    }

    #[test]
    fn misses_are_counted() {
        let mut c = RewriteCache::new(100);
        assert!(c.get("nope").is_none());
        assert_eq!(c.stats.misses, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn memory_hits_share_the_allocation() {
        let mut c = RewriteCache::new(100);
        let v = bytes(vec![7; 32]);
        c.put("a".into(), Arc::clone(&v));
        let (hit, tier) = c.get("a").unwrap();
        assert_eq!(tier, CacheTier::Memory);
        // Same allocation, not a copy.
        assert!(Arc::ptr_eq(&hit, &v));
    }

    #[test]
    fn put_tier_disk_keeps_memory_working_set() {
        let mut c = RewriteCache::new(100);
        c.put("hot".into(), bytes(vec![0; 90]));
        c.put_tier("offer".into(), bytes(vec![0; 90]), CacheTier::Disk);
        // The unsolicited offer must not evict the hot entry.
        assert_eq!(c.get("hot").unwrap().1, CacheTier::Memory);
        assert_eq!(c.stats.evictions, 0);
        // The offer is present, on disk (a later get may promote it).
        assert_eq!(c.peek("offer").unwrap().1, CacheTier::Disk);
    }

    #[test]
    fn peek_counts_nothing_and_promotes_nothing() {
        let mut c = RewriteCache::new(4);
        c.put("a".into(), bytes(vec![0; 8])); // oversized: disk-only
        let before = c.stats;
        assert_eq!(c.peek("a").unwrap().1, CacheTier::Disk);
        assert!(c.peek("nope").is_none());
        assert_eq!(c.stats, before);
        // Still on disk only: peek did not promote.
        assert_eq!(c.peek("a").unwrap().1, CacheTier::Disk);
    }

    #[test]
    fn disk_tier_is_unbounded() {
        let mut c = RewriteCache::new(4);
        for i in 0..50 {
            c.put(format!("k{i}"), bytes(vec![0; 8]));
        }
        assert_eq!(c.len(), 50);
        assert!(c.memory_resident_bytes() <= 8);
    }

    // ---- regression tests for the eviction path (satellite bugfix) ----

    #[test]
    fn fifo_eviction_order_is_exact_insertion_order() {
        let mut c = RewriteCache::new(30);
        c.put("first".into(), bytes(vec![0; 10]));
        c.put("second".into(), bytes(vec![0; 10]));
        c.put("third".into(), bytes(vec![0; 10]));
        assert_eq!(c.stats.evictions, 0);
        // 10 more bytes: exactly one eviction, and it must be "first".
        c.put("fourth".into(), bytes(vec![0; 10]));
        assert_eq!(c.stats.evictions, 1);
        assert_eq!(c.peek("first").map(|(_, t)| t), Some(CacheTier::Disk));
        assert_eq!(c.peek("second").map(|(_, t)| t), Some(CacheTier::Memory));
        // Another: "second" goes next, never "third".
        c.put("fifth".into(), bytes(vec![0; 10]));
        assert_eq!(c.stats.evictions, 2);
        assert_eq!(c.peek("second").map(|(_, t)| t), Some(CacheTier::Disk));
        assert_eq!(c.peek("third").map(|(_, t)| t), Some(CacheTier::Memory));
        assert_eq!(c.peek("fourth").map(|(_, t)| t), Some(CacheTier::Memory));
        assert_eq!(c.peek("fifth").map(|(_, t)| t), Some(CacheTier::Memory));
    }

    #[test]
    fn value_exactly_at_capacity_is_admitted_alone() {
        let mut c = RewriteCache::new(16);
        c.put("small".into(), bytes(vec![0; 4]));
        // len == capacity: admitted, evicting the rest of the set.
        c.put("exact".into(), bytes(vec![0; 16]));
        assert_eq!(c.peek("exact").map(|(_, t)| t), Some(CacheTier::Memory));
        assert_eq!(c.peek("small").map(|(_, t)| t), Some(CacheTier::Disk));
        assert_eq!(c.stats.evictions, 1);
        assert_eq!(c.memory_resident_bytes(), 16);
    }

    #[test]
    fn oversized_value_goes_disk_only_without_flushing_the_working_set() {
        let mut c = RewriteCache::new(20);
        c.put("hot1".into(), bytes(vec![0; 8]));
        c.put("hot2".into(), bytes(vec![0; 8]));
        // 21 bytes > capacity 20: before the fix this evicted hot1 and
        // hot2 *and then itself*, leaving memory empty.
        c.put("huge".into(), bytes(vec![0; 21]));
        assert_eq!(c.stats.evictions, 0, "oversized insert must evict nothing");
        assert_eq!(c.peek("hot1").map(|(_, t)| t), Some(CacheTier::Memory));
        assert_eq!(c.peek("hot2").map(|(_, t)| t), Some(CacheTier::Memory));
        assert_eq!(c.peek("huge").map(|(_, t)| t), Some(CacheTier::Disk));
        assert_eq!(c.memory_resident_bytes(), 16);
        // A get of the oversized value serves from disk and still does
        // not disturb the working set (no phantom promotion).
        assert_eq!(c.get("huge").unwrap().1, CacheTier::Disk);
        assert_eq!(c.get("huge").unwrap().1, CacheTier::Disk);
        assert_eq!(c.peek("hot1").map(|(_, t)| t), Some(CacheTier::Memory));
        assert_eq!(c.stats.evictions, 0);
    }

    #[test]
    fn export_after_walks_both_tier_backends_in_key_order() {
        // Ephemeral backend.
        let mut c = RewriteCache::new(8);
        for i in 0..6 {
            c.put(format!("k{i}"), bytes(vec![i as u8; 16])); // oversized: disk-only
        }
        let (page, complete) = c.export_after("", 4);
        assert!(!complete);
        let keys: Vec<&str> = page.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["k0", "k1", "k2", "k3"]);
        let (page, complete) = c.export_after("k3", 4);
        assert!(complete);
        assert_eq!(page.len(), 2);
        assert_eq!(&page[1].1[..], &[5u8; 16][..]);
        let before = c.stats;
        assert_eq!(c.stats, before, "export touches no hit/miss accounting");

        // Persistent backend, including a corrupt entry that must be
        // skipped and purged rather than exported.
        let tmp = TempDir::new("export");
        let mut c = RewriteCache::new(100);
        let mut store = store_at(&tmp.0);
        let mut sealed = seal(b"rotten");
        let n = sealed.len();
        sealed[n - 1] ^= 0xFF;
        store.put("bad", &sealed).unwrap();
        c.attach_store(store);
        c.put("a".into(), bytes(b"alpha".to_vec()));
        c.put("z".into(), bytes(b"zeta".to_vec()));
        let (page, complete) = c.export_after("", 10);
        assert!(complete);
        let keys: Vec<&str> = page.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a", "z"], "corrupt entry must not migrate");
        assert_eq!(c.stats.disk_load_rejects, 1);
        assert!(!c.contains("bad"), "corrupt entry purged");
    }

    // ---- persistent disk tier ----

    fn store_at(dir: &std::path::Path) -> Store {
        Store::open(dir, StoreConfig::default()).unwrap()
    }

    #[test]
    fn attach_store_migrates_and_survives_reattach() {
        let tmp = TempDir::new("migrate");
        let mut c = RewriteCache::new(100);
        c.put("early".into(), bytes(b"cached before attach".to_vec()));
        c.attach_store(store_at(&tmp.0));
        assert!(c.is_persistent());
        assert_eq!(c.len(), 1);
        c.put("late".into(), bytes(b"cached after attach".to_vec()));

        // "Kill" the cache; a fresh one over the same dir starts warm.
        drop(c);
        let mut c = RewriteCache::new(100);
        c.attach_store(store_at(&tmp.0));
        assert_eq!(c.len(), 2);
        let (v, tier) = c.get("early").unwrap();
        assert_eq!(tier, CacheTier::Disk);
        assert_eq!(&v[..], b"cached before attach");
        let (v, _) = c.get("late").unwrap();
        assert_eq!(&v[..], b"cached after attach");
    }

    #[test]
    fn corrupt_persistent_entry_is_rejected_not_served() {
        let tmp = TempDir::new("reject");
        let mut c = RewriteCache::new(100);
        let mut store = store_at(&tmp.0);
        // Plant an entry whose digest does not match its payload, as a
        // stale or tampered origin would.
        let mut sealed = seal(b"the real payload");
        let n = sealed.len();
        sealed[n - 1] ^= 0xFF;
        store.put("url", &sealed).unwrap();
        c.attach_store(store);
        assert!(c.get("url").is_none(), "corrupt entry must read as a miss");
        assert_eq!(c.stats.disk_load_rejects, 1);
        assert_eq!(c.stats.misses, 1);
        // And the poisoned entry was purged, not left to fail again.
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn envelope_round_trips_and_rejects_flips() {
        let sealed = seal(b"payload");
        assert_eq!(unseal(sealed.clone()).as_deref(), Some(&b"payload"[..]));
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert!(unseal(bad).is_none(), "flip at {i} accepted");
        }
        assert!(unseal(vec![0; 15]).is_none(), "short envelope accepted");
    }
}
