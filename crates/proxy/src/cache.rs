//! The proxy's two-tier rewrite cache.
//!
//! "The proxy uses a cache to avoid rewriting code shared between clients"
//! (§3). Rewritten classes live in a bounded in-memory tier backed by an
//! unbounded on-disk tier; §4.1.2 measures a cached fetch at 338 ms, which
//! is the disk tier's access profile. Tier hit/miss accounting feeds the
//! cache ablation bench.

use std::collections::HashMap;

/// Which tier served a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Served from memory.
    Memory,
    /// Served from the on-disk store.
    Disk,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Memory-tier hits.
    pub memory_hits: u64,
    /// Disk-tier hits (promoted back to memory).
    pub disk_hits: u64,
    /// Misses.
    pub misses: u64,
    /// Evictions from memory to disk.
    pub evictions: u64,
}

/// A bounded-memory, unbounded-disk cache of rewritten class bytes.
#[derive(Debug)]
pub struct RewriteCache {
    memory: HashMap<String, Vec<u8>>,
    // Insertion-ordered keys for FIFO eviction.
    order: Vec<String>,
    disk: HashMap<String, Vec<u8>>,
    memory_capacity_bytes: usize,
    memory_bytes: usize,
    /// Statistics.
    pub stats: CacheStats,
}

impl RewriteCache {
    /// Creates a cache with the given memory-tier capacity in bytes.
    pub fn new(memory_capacity_bytes: usize) -> RewriteCache {
        RewriteCache {
            memory: HashMap::new(),
            order: Vec::new(),
            disk: HashMap::new(),
            memory_capacity_bytes,
            memory_bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// Looks up `key`, reporting which tier answered. Disk hits are
    /// promoted to memory.
    pub fn get(&mut self, key: &str) -> Option<(Vec<u8>, CacheTier)> {
        if let Some(v) = self.memory.get(key) {
            self.stats.memory_hits += 1;
            return Some((v.clone(), CacheTier::Memory));
        }
        if let Some(v) = self.disk.get(key).cloned() {
            self.stats.disk_hits += 1;
            self.insert_memory(key.to_owned(), v.clone());
            return Some((v, CacheTier::Disk));
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts a rewritten class.
    pub fn put(&mut self, key: String, value: Vec<u8>) {
        self.disk.insert(key.clone(), value.clone());
        self.insert_memory(key, value);
    }

    /// Inserts into a chosen tier: `Memory` behaves like [`put`]
    /// (resident in both tiers), `Disk` stores on disk only without
    /// disturbing the memory tier's working set. Peer cache-fill uses
    /// the disk tier for unsolicited offers so a remote shard's rewrite
    /// cannot evict this shard's hot classes.
    ///
    /// [`put`]: RewriteCache::put
    pub fn put_tier(&mut self, key: String, value: Vec<u8>, tier: CacheTier) {
        match tier {
            CacheTier::Memory => self.put(key, value),
            CacheTier::Disk => {
                self.disk.insert(key, value);
            }
        }
    }

    /// Looks up `key` without counting a miss (and without promoting
    /// disk hits): the peer-protocol probe, which must not skew the
    /// local hit/miss accounting that the cache ablations report.
    pub fn peek(&self, key: &str) -> Option<(Vec<u8>, CacheTier)> {
        if let Some(v) = self.memory.get(key) {
            return Some((v.clone(), CacheTier::Memory));
        }
        self.disk.get(key).map(|v| (v.clone(), CacheTier::Disk))
    }

    fn insert_memory(&mut self, key: String, value: Vec<u8>) {
        if self.memory.contains_key(&key) {
            return;
        }
        self.memory_bytes += value.len();
        self.memory.insert(key.clone(), value);
        self.order.push(key);
        while self.memory_bytes > self.memory_capacity_bytes && !self.order.is_empty() {
            let victim = self.order.remove(0);
            if let Some(v) = self.memory.remove(&victim) {
                self.memory_bytes -= v.len();
                self.stats.evictions += 1;
            }
        }
    }

    /// Number of entries in the disk tier (total cached population).
    pub fn len(&self) -> usize {
        self.disk.len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.disk.is_empty()
    }

    /// Bytes resident in the memory tier.
    pub fn memory_resident_bytes(&self) -> usize {
        self.memory_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_then_disk_tiering() {
        let mut c = RewriteCache::new(10);
        c.put("a".into(), vec![0; 8]);
        assert_eq!(c.get("a").unwrap().1, CacheTier::Memory);
        // Inserting b (8 bytes) evicts a from memory (capacity 10).
        c.put("b".into(), vec![0; 8]);
        assert_eq!(c.stats.evictions, 1);
        // a now comes from disk and is promoted.
        assert_eq!(c.get("a").unwrap().1, CacheTier::Disk);
        assert_eq!(c.get("a").unwrap().1, CacheTier::Memory);
    }

    #[test]
    fn misses_are_counted() {
        let mut c = RewriteCache::new(100);
        assert!(c.get("nope").is_none());
        assert_eq!(c.stats.misses, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn put_tier_disk_keeps_memory_working_set() {
        let mut c = RewriteCache::new(100);
        c.put("hot".into(), vec![0; 90]);
        c.put_tier("offer".into(), vec![0; 90], CacheTier::Disk);
        // The unsolicited offer must not evict the hot entry.
        assert_eq!(c.get("hot").unwrap().1, CacheTier::Memory);
        assert_eq!(c.stats.evictions, 0);
        // The offer is present, on disk (a later get may promote it).
        assert_eq!(c.peek("offer").unwrap().1, CacheTier::Disk);
    }

    #[test]
    fn peek_counts_nothing_and_promotes_nothing() {
        let mut c = RewriteCache::new(4);
        c.put("a".into(), vec![0; 8]); // immediately evicted to disk
        let before = c.stats;
        assert_eq!(c.peek("a").unwrap().1, CacheTier::Disk);
        assert!(c.peek("nope").is_none());
        assert_eq!(c.stats, before);
        // Still on disk only: peek did not promote.
        assert_eq!(c.peek("a").unwrap().1, CacheTier::Disk);
    }

    #[test]
    fn disk_tier_is_unbounded() {
        let mut c = RewriteCache::new(4);
        for i in 0..50 {
            c.put(format!("k{i}"), vec![0; 8]);
        }
        assert_eq!(c.len(), 50);
        assert!(c.memory_resident_bytes() <= 8);
    }
}
