//! The DVM proxy infrastructure (§3 of the paper).
//!
//! All static service components share one proxy: it "transparently
//! intercepts code requests from clients, parses JVM bytecodes and
//! generates the instrumented program in the appropriate binary format",
//! composing the services as stackable code-transformation [`filter`]s,
//! caching rewrites ([`cache`]), signing output so injected checks are
//! inseparable from applications ([`sign`], over a from-scratch RFC 1321
//! [`md5`]), and keeping an audit trail for the administration console.

pub mod cache;
pub mod filter;
pub mod md5;
pub mod proxy;
pub mod sign;

pub use cache::{CacheExportPage, CacheStats, CacheTier, RewriteCache};
pub use filter::{Filter, FilterError, NullFilter, Pipeline, RequestContext};
pub use proxy::{
    ir_key, CodeOrigin, IrProducer, IrProduct, MapOrigin, PeerCache, Proxy, ProxyAuditRecord,
    ProxyError, ProxyStats, RewriteCost, ServedFrom, ServedResponse, IR_SCHEME,
};
pub use sign::{SignatureCheck, Signer, TAG_LEN};
