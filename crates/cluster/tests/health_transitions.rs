//! Exhaustive transition-table test for the circuit breaker.
//!
//! The breaker has four reachable situations — closed (with a failure
//! count), open with an unexpired quarantine, open with an expired
//! quarantine, and half-open probing (reached by expiry or by the
//! desperation `force_probe` path) — and four events: `allow`,
//! `record_success`, `record_failure`, `force_probe`. This test drives
//! every (state, event) pair and asserts both the observable behavior
//! (admission, quarantine flag) and the transition counters the
//! telemetry plane records, so the chaos runner's breaker-consistency
//! invariant rests on a fully pinned state machine.

use std::time::Duration;

use dvm_cluster::{HealthConfig, HealthTracker};
use dvm_telemetry::Registry;

const SHARD: u32 = 0;
const LONG: u64 = 60_000; // quarantine that cannot expire within the test
const ZERO: u64 = 0; // quarantine that is expired the moment it is set

/// One scripted step: an event applied to the tracker plus the
/// assertions that pin its outcome.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// `record_success(SHARD)`.
    Success,
    /// `record_failure(SHARD)`.
    Failure,
    /// `allow(SHARD)` must return this.
    Allow(bool),
    /// `force_probe(SHARD)`.
    ForceProbe,
    /// `is_quarantined(SHARD)` must return this.
    Quarantined(bool),
}

/// Expected cumulative transition counters at the end of a script.
#[derive(Debug, Clone, Copy)]
struct Metrics {
    opened: u64,
    half_open: u64,
    closed: u64,
    open_now: i64,
}

fn run(name: &str, threshold: u32, quarantine_ms: u64, script: &[Step], expect: Metrics) {
    let registry = Registry::new();
    let mut t = HealthTracker::new(HealthConfig {
        failure_threshold: threshold,
        quarantine: Duration::from_millis(quarantine_ms),
    });
    t.attach_metrics(&registry);
    for (i, step) in script.iter().enumerate() {
        match step {
            Step::Success => t.record_success(SHARD),
            Step::Failure => t.record_failure(SHARD),
            Step::ForceProbe => t.force_probe(SHARD),
            Step::Allow(want) => {
                let got = t.allow(SHARD);
                assert_eq!(got, *want, "{name}: step {i} allow() = {got}");
            }
            Step::Quarantined(want) => {
                let got = t.is_quarantined(SHARD);
                assert_eq!(got, *want, "{name}: step {i} is_quarantined() = {got}");
            }
        }
    }
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("cluster.breaker.opened"),
        expect.opened,
        "{name}: opened"
    );
    assert_eq!(
        snap.counter("cluster.breaker.half_open"),
        expect.half_open,
        "{name}: half_open"
    );
    assert_eq!(
        snap.counter("cluster.breaker.closed"),
        expect.closed,
        "{name}: closed"
    );
    assert_eq!(
        snap.gauge("cluster.breaker.open_now"),
        expect.open_now,
        "{name}: open_now"
    );
}

use Step::*;

#[test]
fn from_fresh() {
    // A shard with no history admits everything and records nothing.
    run(
        "fresh+allow",
        2,
        LONG,
        &[Quarantined(false), Allow(true), Allow(true)],
        Metrics {
            opened: 0,
            half_open: 0,
            closed: 0,
            open_now: 0,
        },
    );
    // A success on a fresh shard is a no-op transition (closed→closed).
    run(
        "fresh+success",
        2,
        LONG,
        &[Success, Allow(true)],
        Metrics {
            opened: 0,
            half_open: 0,
            closed: 0,
            open_now: 0,
        },
    );
    // One failure below the threshold leaves the circuit closed.
    run(
        "fresh+failure-below-threshold",
        2,
        LONG,
        &[Failure, Quarantined(false), Allow(true)],
        Metrics {
            opened: 0,
            half_open: 0,
            closed: 0,
            open_now: 0,
        },
    );
    // Threshold one: the very first failure opens the circuit.
    run(
        "fresh+failure-threshold-1",
        1,
        LONG,
        &[Failure, Quarantined(true), Allow(false)],
        Metrics {
            opened: 1,
            half_open: 0,
            closed: 0,
            open_now: 1,
        },
    );
    // Forcing a probe on a fresh shard goes straight to half-open.
    run(
        "fresh+force-probe",
        2,
        LONG,
        &[ForceProbe, Allow(false)],
        Metrics {
            opened: 0,
            half_open: 1,
            closed: 0,
            open_now: 0,
        },
    );
}

#[test]
fn from_closed_counting_failures() {
    // Failures accumulate; a success resets the count.
    run(
        "closed+success-resets",
        2,
        LONG,
        &[Failure, Success, Failure, Allow(true), Quarantined(false)],
        Metrics {
            opened: 0,
            half_open: 0,
            closed: 0,
            open_now: 0,
        },
    );
    // Reaching the threshold opens the circuit exactly once.
    run(
        "closed+failure-crosses-threshold",
        2,
        LONG,
        &[Failure, Failure, Quarantined(true), Allow(false)],
        Metrics {
            opened: 1,
            half_open: 0,
            closed: 0,
            open_now: 1,
        },
    );
    run(
        "closed+threshold-3",
        3,
        LONG,
        &[Failure, Failure, Allow(true), Failure, Allow(false)],
        Metrics {
            opened: 1,
            half_open: 0,
            closed: 0,
            open_now: 1,
        },
    );
}

#[test]
fn from_open_unexpired() {
    // Admission is refused for the whole quarantine.
    run(
        "open+allow-refused",
        2,
        LONG,
        &[
            Failure,
            Failure,
            Allow(false),
            Allow(false),
            Quarantined(true),
        ],
        Metrics {
            opened: 1,
            half_open: 0,
            closed: 0,
            open_now: 1,
        },
    );
    // A success (e.g. an in-flight request completing late) closes the
    // circuit directly: open → closed, no half-open in between.
    run(
        "open+success-closes",
        2,
        LONG,
        &[Failure, Failure, Success, Quarantined(false), Allow(true)],
        Metrics {
            opened: 1,
            half_open: 0,
            closed: 1,
            open_now: 0,
        },
    );
    // A further failure re-arms the quarantine without re-counting the
    // open transition (the circuit was already open).
    run(
        "open+failure-rearms",
        2,
        LONG,
        &[Failure, Failure, Failure, Quarantined(true), Allow(false)],
        Metrics {
            opened: 1,
            half_open: 0,
            closed: 0,
            open_now: 1,
        },
    );
    // The desperation path: force_probe overrides the deadline, admits
    // nothing extra itself (probing refuses), and counts a half-open.
    run(
        "open+force-probe",
        2,
        LONG,
        &[
            Failure,
            Failure,
            ForceProbe,
            Allow(false),
            Quarantined(false),
        ],
        Metrics {
            opened: 1,
            half_open: 1,
            closed: 0,
            open_now: 0,
        },
    );
}

#[test]
fn from_open_expired() {
    // An expired quarantine admits exactly one half-open probe.
    run(
        "expired+allow-admits-one-probe",
        2,
        ZERO,
        &[Failure, Failure, Allow(true), Allow(false), Allow(false)],
        Metrics {
            opened: 1,
            half_open: 1,
            closed: 0,
            open_now: 0,
        },
    );
    // is_quarantined is deadline-aware: an expired open circuit no
    // longer reports as quarantined even before anyone probes.
    run(
        "expired+not-quarantined",
        2,
        ZERO,
        &[Failure, Failure, Quarantined(false)],
        Metrics {
            opened: 1,
            half_open: 0,
            closed: 0,
            open_now: 1,
        },
    );
}

#[test]
fn from_probing() {
    // A successful probe closes the circuit and re-admits traffic.
    run(
        "probing+success-closes",
        2,
        ZERO,
        &[
            Failure,
            Failure,
            Allow(true),
            Success,
            Allow(true),
            Allow(true),
        ],
        Metrics {
            opened: 1,
            half_open: 1,
            closed: 1,
            open_now: 0,
        },
    );
    // A failed probe re-opens: a second full open/half-open cycle shows
    // up in the counters.
    run(
        "probing+failure-reopens",
        2,
        ZERO,
        &[
            Failure,
            Failure,
            Allow(true),
            Failure,
            Allow(true),
            Success,
            Allow(true),
        ],
        Metrics {
            opened: 2,
            half_open: 2,
            closed: 1,
            open_now: 0,
        },
    );
    // Probing refuses further admissions until the probe resolves.
    run(
        "probing+allow-refused",
        2,
        ZERO,
        &[
            Failure,
            Failure,
            Allow(true),
            Allow(false),
            Quarantined(false),
        ],
        Metrics {
            opened: 1,
            half_open: 1,
            closed: 0,
            open_now: 0,
        },
    );
    // force_probe while already probing is idempotent: no second
    // half-open is counted.
    run(
        "probing+force-probe-idempotent",
        2,
        LONG,
        &[Failure, Failure, ForceProbe, ForceProbe, Allow(false)],
        Metrics {
            opened: 1,
            half_open: 1,
            closed: 0,
            open_now: 0,
        },
    );
}

#[test]
fn long_histories_keep_the_ledger_consistent() {
    // Several full cycles: the breaker-consistency inequality the chaos
    // runner asserts (opened - open_now <= half_open + closed) must hold
    // at every point; here it is checked exactly at the end of a long
    // mixed history.
    run(
        "three-full-cycles",
        2,
        ZERO,
        &[
            Failure,
            Failure,     // open #1
            Allow(true), // half-open #1
            Failure,     // reopen: open #2
            Allow(true), // half-open #2
            Success,     // closed #1
            Failure,
            Failure,     // open #3
            Allow(true), // half-open #3
            Success,     // closed #2
            Allow(true),
        ],
        Metrics {
            opened: 3,
            half_open: 3,
            closed: 2,
            open_now: 0,
        },
    );
    // Ending while still open: the gauge stays up and the inequality
    // still balances (opened 2, exits = half_open 1 + closed 1 = 2... of
    // which one circuit remains open).
    run(
        "ends-open",
        2,
        ZERO,
        &[
            Failure,
            Failure,     // open #1
            Allow(true), // half-open #1
            Success,     // closed #1
            Failure,
            Failure,            // open #2 — and stop here
            Quarantined(false), // zero quarantine: already expired
        ],
        Metrics {
            opened: 2,
            half_open: 1,
            closed: 1,
            open_now: 1,
        },
    );
}
