//! Per-shard circuit breaker: quarantine unhealthy shards, probe them
//! half-open.
//!
//! A shard that keeps failing wastes every client's connect timeout on
//! each request it appears in the failover order for. The tracker moves
//! such a shard through the classic breaker states: *closed* (healthy,
//! requests flow), *open* (quarantined — skipped outright until the
//! quarantine expires), and *half-open* (exactly one probe request is
//! admitted; its outcome closes the circuit again or re-arms the
//! quarantine). Time comes from a caller-supplied clock only through
//! `Instant::now()` at the call sites, so the tracker itself stays a
//! pure state machine over the instants it is handed.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dvm_telemetry::{Counter, Gauge, GaugeMode, JournalKind, Registry, Telemetry};

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Consecutive failures (while closed) that open the circuit.
    pub failure_threshold: u32,
    /// How long an opened circuit refuses traffic before admitting a
    /// half-open probe.
    pub quarantine: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            failure_threshold: 2,
            quarantine: Duration::from_millis(500),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum State {
    /// Healthy; counts consecutive failures toward the threshold.
    Closed { failures: u32 },
    /// Quarantined until the deadline.
    Open { until: Instant },
    /// One probe is in flight; the next record_* call resolves it.
    Probing,
}

/// Pre-registered handles for breaker state-transition telemetry.
#[derive(Debug, Clone)]
struct BreakerMetrics {
    /// Circuits armed (closed/half-open → open).
    opened: Arc<Counter>,
    /// Expired quarantines admitting a half-open probe (incl. forced).
    half_open: Arc<Counter>,
    /// Circuits closing again after a successful probe.
    closed: Arc<Counter>,
    /// Circuits currently open (quarantining a shard).
    open_now: Arc<Gauge>,
}

impl BreakerMetrics {
    fn register(registry: &Registry) -> BreakerMetrics {
        BreakerMetrics {
            opened: registry.counter("cluster.breaker.opened"),
            half_open: registry.counter("cluster.breaker.half_open"),
            closed: registry.counter("cluster.breaker.closed"),
            // Point-in-time view of the *same* shards from every
            // observer: fleet merges take the worst case, not the sum.
            open_now: registry.gauge_with_mode("cluster.breaker.open_now", GaugeMode::Max),
        }
    }
}

/// Tracks one circuit breaker per shard id.
#[derive(Debug)]
pub struct HealthTracker {
    config: HealthConfig,
    states: HashMap<u32, State>,
    metrics: Option<BreakerMetrics>,
    journal: Option<Arc<Telemetry>>,
}

impl HealthTracker {
    /// Creates a tracker; every shard starts closed (healthy).
    pub fn new(config: HealthConfig) -> HealthTracker {
        HealthTracker {
            config,
            states: HashMap::new(),
            metrics: None,
            journal: None,
        }
    }

    /// Registers breaker transition counters (`cluster.breaker.*`) into
    /// `registry`; without this the tracker stays a pure state machine.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.metrics = Some(BreakerMetrics::register(registry));
    }

    /// Records every breaker state transition into `telemetry`'s event
    /// journal (kind [`JournalKind::BreakerTransition`]).
    pub fn attach_journal(&mut self, telemetry: Arc<Telemetry>) {
        self.journal = Some(telemetry);
    }

    /// Moves `shard` to `next`, counting and journaling the transition.
    fn transition(&mut self, shard: u32, next: State) {
        fn kind(s: State) -> u8 {
            match s {
                State::Closed { .. } => 0,
                State::Open { .. } => 1,
                State::Probing => 2,
            }
        }
        let prev = self.states.insert(shard, next);
        // Unknown shards start closed, so None→Closed is not a change.
        let prev_kind = kind(prev.unwrap_or(State::Closed { failures: 0 }));
        if prev_kind != kind(next) {
            if let Some(t) = &self.journal {
                t.record_event(JournalKind::BreakerTransition {
                    shard,
                    state: kind(next),
                });
            }
        }
        let Some(m) = &self.metrics else { return };
        let was_open = matches!(prev, Some(State::Open { .. }));
        match next {
            State::Open { .. } if !was_open => {
                m.opened.inc();
                m.open_now.add(1);
            }
            State::Probing => {
                if was_open {
                    m.open_now.add(-1);
                }
                if !matches!(prev, Some(State::Probing)) {
                    m.half_open.inc();
                }
            }
            State::Closed { .. } => {
                if was_open {
                    m.open_now.add(-1);
                }
                if matches!(prev, Some(State::Open { .. }) | Some(State::Probing)) {
                    m.closed.inc();
                }
            }
            _ => {}
        }
    }

    /// Whether a request may be sent to `shard` right now. An expired
    /// quarantine admits exactly one half-open probe; further calls
    /// refuse until that probe's outcome is recorded.
    pub fn allow(&mut self, shard: u32) -> bool {
        match self.states.get(&shard).copied() {
            None | Some(State::Closed { .. }) => true,
            Some(State::Open { until }) => {
                if Instant::now() >= until {
                    self.transition(shard, State::Probing);
                    true
                } else {
                    false
                }
            }
            Some(State::Probing) => false,
        }
    }

    /// Forces `shard` into the half-open probing state regardless of its
    /// quarantine deadline — the desperation path when every shard is
    /// quarantined and the client must try *something*.
    pub fn force_probe(&mut self, shard: u32) {
        self.transition(shard, State::Probing);
    }

    /// Records a successful request: the circuit closes and the failure
    /// count resets.
    pub fn record_success(&mut self, shard: u32) {
        self.transition(shard, State::Closed { failures: 0 });
    }

    /// Records a failed request: a failed probe (or crossing the
    /// threshold while closed) opens the circuit for one quarantine
    /// period.
    pub fn record_failure(&mut self, shard: u32) {
        let next = match self.states.get(&shard).copied() {
            Some(State::Probing) | Some(State::Open { .. }) => State::Open {
                until: Instant::now() + self.config.quarantine,
            },
            Some(State::Closed { failures }) => {
                let failures = failures + 1;
                if failures >= self.config.failure_threshold.max(1) {
                    State::Open {
                        until: Instant::now() + self.config.quarantine,
                    }
                } else {
                    State::Closed { failures }
                }
            }
            None => {
                if self.config.failure_threshold.max(1) == 1 {
                    State::Open {
                        until: Instant::now() + self.config.quarantine,
                    }
                } else {
                    State::Closed { failures: 1 }
                }
            }
        };
        self.transition(shard, next);
    }

    /// True while `shard`'s circuit is open and its quarantine has not
    /// yet expired.
    pub fn is_quarantined(&self, shard: u32) -> bool {
        matches!(
            self.states.get(&shard),
            Some(State::Open { until }) if Instant::now() < *until
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(threshold: u32, quarantine_ms: u64) -> HealthTracker {
        HealthTracker::new(HealthConfig {
            failure_threshold: threshold,
            quarantine: Duration::from_millis(quarantine_ms),
        })
    }

    #[test]
    fn threshold_failures_open_the_circuit() {
        let mut t = tracker(2, 10_000);
        assert!(t.allow(0));
        t.record_failure(0);
        assert!(t.allow(0), "one failure is below the threshold");
        t.record_failure(0);
        assert!(!t.allow(0), "threshold reached: quarantined");
        assert!(t.is_quarantined(0));
    }

    #[test]
    fn success_resets_the_failure_count() {
        let mut t = tracker(2, 10_000);
        t.record_failure(0);
        t.record_success(0);
        t.record_failure(0);
        assert!(t.allow(0), "count restarted after a success");
    }

    #[test]
    fn expired_quarantine_admits_exactly_one_probe() {
        let mut t = tracker(1, 0); // zero quarantine: expires immediately
        t.record_failure(0);
        assert!(t.allow(0), "half-open probe admitted");
        assert!(!t.allow(0), "second request refused while probing");
        t.record_failure(0);
        // Failed probe re-armed the (zero-length) quarantine.
        assert!(t.allow(0), "next probe admitted after re-quarantine");
        t.record_success(0);
        assert!(t.allow(0), "successful probe closes the circuit");
        assert!(t.allow(0));
    }

    #[test]
    fn shards_are_independent() {
        let mut t = tracker(1, 10_000);
        t.record_failure(3);
        assert!(!t.allow(3));
        assert!(t.allow(4));
    }

    #[test]
    fn breaker_transitions_are_counted() {
        let registry = Registry::new();
        let mut t = tracker(1, 0); // zero quarantine: expires immediately
        t.attach_metrics(&registry);
        t.record_failure(0); // closed -> open
        let snap = registry.snapshot();
        assert_eq!(snap.counters["cluster.breaker.opened"], 1);
        assert_eq!(snap.gauges["cluster.breaker.open_now"], 1);
        assert!(t.allow(0)); // open -> half-open probe
        t.record_failure(0); // probe failed -> open again
        assert!(t.allow(0)); // open -> half-open probe
        t.record_success(0); // probe ok -> closed
        let snap = registry.snapshot();
        assert_eq!(snap.counters["cluster.breaker.opened"], 2);
        assert_eq!(snap.counters["cluster.breaker.half_open"], 2);
        assert_eq!(snap.counters["cluster.breaker.closed"], 1);
        assert_eq!(snap.gauges["cluster.breaker.open_now"], 0);
    }

    #[test]
    fn breaker_transitions_are_journaled() {
        let telemetry = Arc::new(Telemetry::new("client"));
        let mut t = tracker(1, 0);
        t.attach_journal(telemetry.clone());
        t.record_failure(2); // closed -> open
        assert!(t.allow(2)); // open -> probing
        t.record_success(2); // probing -> closed
        t.record_success(2); // closed -> closed: no event
        let states: Vec<(u32, u8)> = telemetry
            .journal()
            .events_after(0, 100)
            .into_iter()
            .filter_map(|e| match e.kind {
                JournalKind::BreakerTransition { shard, state } => Some((shard, state)),
                _ => None,
            })
            .collect();
        assert_eq!(states, vec![(2, 1), (2, 2), (2, 0)]);
    }

    #[test]
    fn force_probe_overrides_quarantine() {
        let mut t = tracker(1, 10_000);
        t.record_failure(0);
        assert!(!t.allow(0));
        t.force_probe(0);
        t.record_success(0);
        assert!(t.allow(0));
    }
}
