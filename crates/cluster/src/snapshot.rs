//! Wire codec for ring snapshots.
//!
//! A `RING_UPDATE` frame carries the ring as opaque bytes — `dvm-net`
//! stays membership-agnostic — and this module gives those bytes a
//! shape: epoch, geometry (`vnodes`, `seed`), the shard set, the full
//! segment-owner table, and each shard's advertised socket address.
//! Shipping the owner table verbatim (4 bytes × vnodes × shards)
//! instead of replaying a transition log means a client that missed any
//! number of epochs converges in one frame.
//!
//! The decoder is hostile-input safe in the same way `dvm_net::frame`
//! is: every length is bounds-checked, counts are capped, and all
//! failures are typed `SnapshotError`s — never panics.

use crate::ring::HashRing;
use std::fmt;

/// Upper bound on encoded snapshots we will accept: generous for any
/// realistic fleet (a 64-shard, 1024-vnode ring is ~256 KiB), small
/// enough that a hostile length can't balloon allocation.
pub const MAX_SNAPSHOT_LEN: usize = 4 << 20;

const MAGIC: u32 = 0x44564D52; // "DVMR"
const VERSION: u8 = 1;

/// A self-contained description of one ring epoch, as shipped in
/// `RING_UPDATE` frames and fed to joining shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingSnapshot {
    pub epoch: u64,
    pub vnodes: u32,
    pub seed: u64,
    /// Sorted live shard ids.
    pub shards: Vec<u32>,
    /// The clockwise segment-owner table (`vnodes × shards.len()` at
    /// steady state, but treated as authoritative whatever its length).
    pub owners: Vec<u32>,
    /// `shard id → advertised address` pairs, sorted by shard id.
    pub addrs: Vec<(u32, String)>,
}

/// Typed decode failures for [`RingSnapshot::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Input too short for a declared field.
    Truncated { at: &'static str },
    /// Magic/version mismatch or a structurally impossible value.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { at } => write!(f, "snapshot truncated at {at}"),
            SnapshotError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl RingSnapshot {
    /// Captures the ring plus an address book into a snapshot.
    pub fn capture(ring: &HashRing, addrs: &[(u32, String)]) -> RingSnapshot {
        let mut addrs = addrs.to_vec();
        addrs.sort_by_key(|(s, _)| *s);
        RingSnapshot {
            epoch: ring.epoch(),
            vnodes: ring.vnodes(),
            seed: ring.seed(),
            shards: ring.shards().to_vec(),
            owners: ring.owners().to_vec(),
            addrs,
        }
    }

    /// Rebuilds a routable ring from this snapshot.
    pub fn to_ring(&self) -> HashRing {
        HashRing::from_snapshot(
            self.vnodes,
            self.seed,
            self.epoch,
            self.shards.clone(),
            self.owners.clone(),
        )
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 4 * self.owners.len());
        out.extend_from_slice(&MAGIC.to_be_bytes());
        out.push(VERSION);
        out.extend_from_slice(&self.epoch.to_be_bytes());
        out.extend_from_slice(&self.vnodes.to_be_bytes());
        out.extend_from_slice(&self.seed.to_be_bytes());
        out.extend_from_slice(&(self.shards.len() as u32).to_be_bytes());
        for &s in &self.shards {
            out.extend_from_slice(&s.to_be_bytes());
        }
        out.extend_from_slice(&(self.owners.len() as u32).to_be_bytes());
        for &o in &self.owners {
            out.extend_from_slice(&o.to_be_bytes());
        }
        out.extend_from_slice(&(self.addrs.len() as u32).to_be_bytes());
        for (s, a) in &self.addrs {
            out.extend_from_slice(&s.to_be_bytes());
            let bytes = a.as_bytes();
            out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
            out.extend_from_slice(bytes);
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<RingSnapshot, SnapshotError> {
        if bytes.len() > MAX_SNAPSHOT_LEN {
            return Err(SnapshotError::Malformed(format!(
                "snapshot of {} bytes exceeds cap {}",
                bytes.len(),
                MAX_SNAPSHOT_LEN
            )));
        }
        let mut c = Reader { buf: bytes, pos: 0 };
        let magic = c.u32("magic")?;
        if magic != MAGIC {
            return Err(SnapshotError::Malformed(format!("bad magic {magic:#x}")));
        }
        let version = c.u8("version")?;
        if version != VERSION {
            return Err(SnapshotError::Malformed(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let epoch = c.u64("epoch")?;
        let vnodes = c.u32("vnodes")?;
        let seed = c.u64("seed")?;
        let n_shards = c.u32("shard count")? as usize;
        c.check_room(n_shards, 4, "shard table")?;
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            shards.push(c.u32("shard id")?);
        }
        let n_owners = c.u32("owner count")? as usize;
        c.check_room(n_owners, 4, "owner table")?;
        let mut owners = Vec::with_capacity(n_owners);
        for _ in 0..n_owners {
            owners.push(c.u32("owner id")?);
        }
        let n_addrs = c.u32("addr count")? as usize;
        c.check_room(n_addrs, 6, "addr table")?;
        let mut addrs = Vec::with_capacity(n_addrs);
        for _ in 0..n_addrs {
            let shard = c.u32("addr shard")?;
            let len = c.u16("addr length")? as usize;
            let raw = c.take(len, "addr bytes")?;
            let addr = std::str::from_utf8(raw)
                .map_err(|_| SnapshotError::Malformed("addr is not UTF-8".into()))?;
            addrs.push((shard, addr.to_string()));
        }
        if c.pos != bytes.len() {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes after snapshot",
                bytes.len() - c.pos
            )));
        }
        Ok(RingSnapshot {
            epoch,
            vnodes,
            seed,
            shards,
            owners,
            addrs,
        })
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, at: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() - self.pos < n {
            return Err(SnapshotError::Truncated { at });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Rejects a declared element count the remaining bytes can't hold,
    /// before `Vec::with_capacity` trusts it.
    fn check_room(
        &self,
        count: usize,
        min_each: usize,
        at: &'static str,
    ) -> Result<(), SnapshotError> {
        let room = self.buf.len() - self.pos;
        if count.checked_mul(min_each).is_none_or(|need| need > room) {
            return Err(SnapshotError::Truncated { at });
        }
        Ok(())
    }

    fn u8(&mut self, at: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, at)?[0])
    }

    fn u16(&mut self, at: &'static str) -> Result<u16, SnapshotError> {
        let b = self.take(2, at)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, at: &'static str) -> Result<u32, SnapshotError> {
        let b = self.take(4, at)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, at: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, at)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RingSnapshot {
        let mut ring = HashRing::with_shards(3, 64, 42);
        ring.join_shard(3);
        RingSnapshot::capture(
            &ring,
            &[
                (2, "127.0.0.1:9002".into()),
                (0, "127.0.0.1:9000".into()),
                (1, "127.0.0.1:9001".into()),
                (3, "127.0.0.1:9003".into()),
            ],
        )
    }

    #[test]
    fn roundtrip() {
        let snap = sample();
        let decoded = RingSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.addrs[0].0, 0, "addrs come back sorted");
        let ring = decoded.to_ring();
        assert_eq!(ring.epoch(), 1);
        assert_eq!(ring.shards(), &[0, 1, 2, 3]);
    }

    #[test]
    fn truncations_are_typed() {
        let bytes = sample().encode();
        for cut in [0, 3, 4, 5, 12, 20, bytes.len() - 1] {
            let err = RingSnapshot::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn hostile_counts_are_rejected_without_allocating() {
        // Declare u32::MAX shards with no bytes behind the claim.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC.to_be_bytes());
        bytes.push(VERSION);
        bytes.extend_from_slice(&7u64.to_be_bytes());
        bytes.extend_from_slice(&64u32.to_be_bytes());
        bytes.extend_from_slice(&42u64.to_be_bytes());
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = RingSnapshot::decode(&bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::Truncated { .. }), "{err}");
    }

    #[test]
    fn trailing_bytes_and_bad_magic_are_malformed() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(matches!(
            RingSnapshot::decode(&bytes).unwrap_err(),
            SnapshotError::Malformed(_)
        ));
        let mut bad = sample().encode();
        bad[0] ^= 0xFF;
        assert!(matches!(
            RingSnapshot::decode(&bad).unwrap_err(),
            SnapshotError::Malformed(_)
        ));
    }
}
