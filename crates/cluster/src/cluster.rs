//! `ProxyCluster`: N proxy shards behind N sockets, acting as one proxy.
//!
//! The paper's organization-wide proxy is a single chokepoint; this
//! module scales it out. Each shard is a full [`dvm_net::ProxyServer`]
//! wrapping its own `Proxy` (filters, cache, signer); a shared seeded
//! [`HashRing`] gives every participant — client or shard — the same
//! URL→shard map with zero coordination traffic. When peer cache-fill is
//! enabled, every shard gets a [`ClusterPeer`] wired into its proxy so a
//! local cache miss probes the URL's home shard before rewriting.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use dvm_monitor::AdminConsole;
use dvm_net::{
    Hello, MembershipView, MetricsSource, MigrateBatch, MigrateExporter, NetConfig, ProxyServer,
    ServerConfig, ServerStats,
};
use dvm_proxy::Proxy;
use dvm_store::{Store, StoreConfig};
use dvm_telemetry::{MetricsSnapshot, StatsReport, Telemetry};
use dvm_watch::{MetricsHttp, StoreSpool, Watch, WatchConfig, WatchDriver};

use crate::peer::{ClusterPeer, PeerLink, PeerStats};
use crate::ring::{HashRing, RemapPlan};
use crate::snapshot::RingSnapshot;
use crate::stats::{collect_fleet_stats_live, FleetStats};

/// Cluster construction knobs.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Virtual nodes per shard on the ring.
    pub vnodes: u32,
    /// Ring seed; every client of this cluster must use the same seed.
    pub seed: u64,
    /// Per-shard server configuration (connection limits, faults).
    pub server: ServerConfig,
    /// Networking knobs for shard-to-shard peer links.
    pub peer_net: NetConfig,
    /// Whether shards probe the home shard's cache before rewriting.
    pub peer_fill: bool,
    /// When set, each shard's rewrite cache is backed by a persistent
    /// store at `<data_dir>/shard<i>`: a killed shard that restarts
    /// over the same directory serves its previous rewrites from disk.
    pub data_dir: Option<PathBuf>,
    /// Store tuning for persistent shards (segment size, durability).
    pub store: StoreConfig,
    /// When set, every shard runs a background [`Watch`] over its
    /// telemetry: time-series rings, SLO burn-rate alerts, and the
    /// `METRICS_SCRAPE` exposition. Persistent clusters (`data_dir`
    /// set) additionally spool each shard's event journal through a
    /// `dvm-store` log at `<data_dir>/journal<i>`, so cursor tails
    /// survive restarts.
    pub watch: Option<WatchConfig>,
    /// With `watch` enabled, also bind a plain HTTP/1.0 `GET /metrics`
    /// listener per shard on `127.0.0.1:0` (for scrapers that speak
    /// HTTP rather than the DVM wire protocol).
    pub metrics_http: bool,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            vnodes: 128,
            seed: 0,
            server: ServerConfig::default(),
            peer_net: NetConfig::default(),
            peer_fill: true,
            data_dir: None,
            store: StoreConfig::default(),
            watch: None,
            metrics_http: false,
        }
    }
}

/// Adapts a shard's [`Watch`] to the net layer's [`MetricsSource`]
/// hook, so the shard's server can answer `METRICS_SCRAPE` frames with
/// the watch's Prometheus-text exposition.
pub struct WatchScrape(pub Arc<Watch>);

impl MetricsSource for WatchScrape {
    fn render_metrics(&self) -> String {
        self.0.render()
    }
}

/// One shard's running observability plane: the watch itself, its
/// background ticker, and (optionally) its HTTP scrape listener. Drops
/// stop the ticker and close the listener.
struct ShardWatch {
    watch: Arc<Watch>,
    _driver: WatchDriver,
    http: Option<MetricsHttp>,
}

/// The source side of live cache migration, installed on every shard's
/// server: answers `MIGRATE_BEGIN` by walking this shard's cached
/// population and streaming out the entries the *asking* shard owns
/// under the published ring. The ring is re-read from the membership
/// view per batch, so the exporter always serves the epoch it
/// advertises.
struct ShardExporter {
    proxy: Arc<Proxy>,
    view: Arc<MembershipView>,
}

impl MigrateExporter for ShardExporter {
    fn export(
        &self,
        shard: u32,
        epoch: u64,
        after: &str,
        max: usize,
    ) -> Result<MigrateBatch, String> {
        let snapshot = self.view.snapshot();
        if snapshot.is_empty() {
            return Err("no ring published on this shard".into());
        }
        let snap = RingSnapshot::decode(&snapshot).map_err(|e| e.to_string())?;
        if epoch > snap.epoch {
            return Err(format!(
                "migration epoch {epoch} is ahead of this shard's epoch {}",
                snap.epoch
            ));
        }
        let ring = snap.to_ring();
        let max = max.max(1);
        let mut entries = Vec::new();
        let mut cursor = after.to_string();
        let mut complete = true;
        'scan: loop {
            // Page the underlying cache and keep only the asker's keys;
            // the scan advances by *underlying* key so a page with no
            // owned keys still makes progress.
            let (page, page_complete) = self.proxy.cache_export_after(&cursor, max);
            let last_key = page.last().map(|(k, _)| k.clone());
            for (key, value) in page {
                if ring.home(&key) == Some(shard) {
                    entries.push((key, value.to_vec()));
                    if entries.len() >= max {
                        complete = false;
                        break 'scan;
                    }
                }
            }
            match last_key {
                Some(k) if !page_complete => cursor = k,
                _ => break 'scan,
            }
        }
        Ok(MigrateBatch { entries, complete })
    }
}

/// A running cluster of proxy shards on loopback sockets.
pub struct ProxyCluster {
    servers: Vec<Option<ProxyServer>>,
    proxies: Vec<Arc<Proxy>>,
    peers: Vec<Option<Arc<ClusterPeer>>>,
    watches: Vec<Option<ShardWatch>>,
    addrs: Vec<SocketAddr>,
    ring: HashRing,
    console: Option<Arc<Mutex<AdminConsole>>>,
    opts: ClusterOptions,
    /// One view shared by every shard's server: the published ring
    /// epoch that `RING_UPDATE` askers converge on.
    view: Arc<MembershipView>,
}

impl std::fmt::Debug for ProxyCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProxyCluster")
            .field("shards", &self.addrs.len())
            .field("addrs", &self.addrs)
            .finish()
    }
}

impl ProxyCluster {
    /// Binds one server per proxy on `127.0.0.1:0`, builds the ring for
    /// exactly those shards, and (when enabled) wires peer cache-fill
    /// links between them. All shards share the optional console, so the
    /// administrator sees one organization regardless of shard count.
    pub fn start(
        proxies: Vec<Arc<Proxy>>,
        console: Option<Arc<Mutex<AdminConsole>>>,
        opts: ClusterOptions,
    ) -> std::io::Result<ProxyCluster> {
        if proxies.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a cluster needs at least one shard",
            ));
        }
        // Persistent shards open their stores before serving a single
        // request, so a restarted shard is warm from its first fetch.
        if let Some(data_dir) = &opts.data_dir {
            for (i, proxy) in proxies.iter().enumerate() {
                let store = Store::open(data_dir.join(format!("shard{i}")), opts.store.clone())
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                proxy.attach_store(store);
            }
        }
        let view = Arc::new(MembershipView::new());
        let mut servers = Vec::with_capacity(proxies.len());
        let mut addrs = Vec::with_capacity(proxies.len());
        for proxy in &proxies {
            let server = ProxyServer::bind(
                "127.0.0.1:0",
                proxy.clone(),
                console.clone(),
                opts.server.clone(),
            )?;
            server.set_membership_view(view.clone());
            server.set_migrate_exporter(Arc::new(ShardExporter {
                proxy: proxy.clone(),
                view: view.clone(),
            }));
            addrs.push(server.addr());
            servers.push(Some(server));
        }
        let ring = HashRing::with_shards(proxies.len() as u32, opts.vnodes, opts.seed);

        // Peer links can only be wired once every shard has a bound
        // address, hence the second pass.
        let mut peers = Vec::with_capacity(proxies.len());
        for (i, proxy) in proxies.iter().enumerate() {
            if !opts.peer_fill || proxies.len() < 2 {
                peers.push(None);
                continue;
            }
            let peer = Arc::new(ClusterPeer::new(i as u32, ring.clone()));
            let links: HashMap<u32, Arc<PeerLink>> = addrs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(j, &addr)| {
                    let hello = Hello {
                        user: format!("shard{i}"),
                        principal: "cluster-peer".into(),
                        ..Hello::default()
                    };
                    (
                        j as u32,
                        Arc::new(PeerLink::new(addr, hello, opts.peer_net)),
                    )
                })
                .collect();
            peer.set_links(links);
            proxy.set_peer_cache(peer.clone());
            peers.push(Some(peer));
        }

        let mut cluster = ProxyCluster {
            servers,
            proxies,
            peers,
            watches: Vec::new(),
            addrs,
            ring,
            console,
            opts,
            view,
        };
        cluster.watches = (0..cluster.servers.len())
            .map(|i| cluster.attach_watch(i))
            .collect();
        cluster.publish_view();
        Ok(cluster)
    }

    /// Starts shard `i`'s observability plane per the cluster options:
    /// a [`Watch`] ticking on the shard's telemetry, installed as the
    /// server's `METRICS_SCRAPE` source, plus (for persistent clusters)
    /// a durable journal spool and (when asked) an HTTP listener.
    /// Returns `None` when watching is not configured.
    fn attach_watch(&self, i: usize) -> Option<ShardWatch> {
        let config = self.opts.watch.clone()?;
        let server = self.servers.get(i)?.as_ref()?;
        let telemetry = server.telemetry();
        if let Some(data_dir) = &self.opts.data_dir {
            // Re-attaching after a restart is safe: the spool only ever
            // advances the journal's next sequence number.
            if let Ok(spool) = StoreSpool::open(data_dir.join(format!("journal{i}"))) {
                telemetry.journal().set_spool(Arc::new(spool));
            }
        }
        let interval_ns = config.interval_ns;
        let watch = Watch::new(telemetry, config);
        server.set_metrics_source(Arc::new(WatchScrape(watch.clone())));
        let http = if self.opts.metrics_http {
            MetricsHttp::bind("127.0.0.1:0", watch.clone()).ok()
        } else {
            None
        };
        Some(ShardWatch {
            watch: watch.clone(),
            _driver: WatchDriver::start(watch, interval_ns),
            http,
        })
    }

    /// Shard `i`'s observability plane, `None` when watching is off or
    /// the shard is killed.
    pub fn watch(&self, i: usize) -> Option<Arc<Watch>> {
        self.watches
            .get(i)
            .and_then(|w| w.as_ref())
            .map(|w| w.watch.clone())
    }

    /// Shard `i`'s HTTP `GET /metrics` address, when
    /// [`ClusterOptions::metrics_http`] is set.
    pub fn metrics_addr(&self, i: usize) -> Option<SocketAddr> {
        self.watches
            .get(i)
            .and_then(|w| w.as_ref())
            .and_then(|w| w.http.as_ref())
            .map(|h| h.addr())
    }

    /// Captures the current ring + address book as a snapshot and
    /// publishes it to every shard's `RING_UPDATE` view, so any client
    /// (or joining shard) asking any live shard converges on this
    /// epoch. Peer tables are *not* touched here — see `rewire_peers`.
    fn publish_view(&self) {
        let pairs: Vec<(u32, String)> = self
            .ring
            .shards()
            .iter()
            .map(|&s| (s, self.addrs[s as usize].to_string()))
            .collect();
        let snap = RingSnapshot::capture(&self.ring, &pairs);
        self.view.publish(snap.epoch, snap.encode());
    }

    /// Rebuilds every live shard's peer table against the current ring
    /// and membership: links go to every *other* live ring member, and
    /// existing peer tables keep their stats (only the ring and link
    /// set are swapped). Shards that had no peer table (single-shard
    /// start) get one as soon as there are two live members.
    fn rewire_peers(&mut self) {
        if !self.opts.peer_fill {
            return;
        }
        let live: Vec<u32> = self
            .ring
            .shards()
            .iter()
            .copied()
            .filter(|&s| self.is_alive(s as usize))
            .collect();
        for &i in &live {
            let links: HashMap<u32, Arc<PeerLink>> = live
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| {
                    let hello = Hello {
                        user: format!("shard{i}"),
                        principal: "cluster-peer".into(),
                        ..Hello::default()
                    };
                    (
                        j,
                        Arc::new(PeerLink::new(
                            self.addrs[j as usize],
                            hello,
                            self.opts.peer_net,
                        )),
                    )
                })
                .collect();
            if links.is_empty() {
                continue;
            }
            let slot = &mut self.peers[i as usize];
            match slot {
                Some(peer) => {
                    peer.set_ring(self.ring.clone());
                    peer.set_links(links);
                }
                None => {
                    let peer = Arc::new(ClusterPeer::new(i, self.ring.clone()));
                    peer.set_links(links);
                    self.proxies[i as usize].set_peer_cache(peer.clone());
                    *slot = Some(peer);
                }
            }
        }
    }

    /// Adds a brand-new shard at runtime: binds a server for `proxy`
    /// (opening `shard<id>`'s persistent store first when the cluster
    /// is persistent), claims the new shard's key range on the ring via
    /// a minimal remap, rewires peer tables, and publishes the new
    /// epoch. Returns the new shard's id and the remap plan — the
    /// membership plane uses the plan to pull the shard's keys out of
    /// their previous owners (live cache migration) so it starts warm.
    pub fn spawn_shard(&mut self, proxy: Arc<Proxy>) -> std::io::Result<(u32, RemapPlan)> {
        let id = self.servers.len() as u32;
        if let Some(data_dir) = &self.opts.data_dir {
            let store = Store::open(data_dir.join(format!("shard{id}")), self.opts.store.clone())
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            proxy.attach_store(store);
        }
        let server = ProxyServer::bind(
            "127.0.0.1:0",
            proxy.clone(),
            self.console.clone(),
            self.opts.server.clone(),
        )?;
        server.set_membership_view(self.view.clone());
        server.set_migrate_exporter(Arc::new(ShardExporter {
            proxy: proxy.clone(),
            view: self.view.clone(),
        }));
        self.addrs.push(server.addr());
        self.servers.push(Some(server));
        self.proxies.push(proxy);
        self.peers.push(None);
        let watch = self.attach_watch(id as usize);
        self.watches.push(watch);
        let plan = self.ring.join_shard(id);
        self.rewire_peers();
        self.publish_view();
        Ok((id, plan))
    }

    /// The remap a retirement of `shard` *would* produce, without
    /// changing anything: the membership plane drains the departing
    /// shard's keys to the survivors this plan names before committing
    /// with [`ProxyCluster::retire_shard`].
    pub fn plan_retire(&self, shard: u32) -> RemapPlan {
        let mut preview = self.ring.clone();
        preview.retire_shard(shard)
    }

    /// Removes shard `i` from membership: its segments move to the
    /// clockwise survivors (the committed plan is identical to
    /// [`ProxyCluster::plan_retire`]'s preview — retirement is
    /// deterministic), peer tables drop their links to it, its server
    /// shuts down cleanly, and the new epoch is published. The server
    /// stats are `None` when the shard was already dead.
    pub fn retire_shard(&mut self, i: usize) -> (RemapPlan, Option<ServerStats>) {
        let was_member = self.ring.shards().contains(&(i as u32));
        let plan = self.ring.retire_shard(i as u32);
        if !was_member {
            return (plan, None);
        }
        if self.peers.get(i).is_some_and(|p| p.is_some()) {
            self.proxies[i].clear_peer_cache();
            self.peers[i] = None;
        }
        if let Some(w) = self.watches.get_mut(i) {
            *w = None;
        }
        let stats = self
            .servers
            .get_mut(i)
            .and_then(|slot| slot.take())
            .map(|s| s.shutdown());
        self.rewire_peers();
        self.publish_view();
        (plan, stats)
    }

    /// Restarts a killed shard in place: rebinds a server over the same
    /// proxy (whose cache — and persistent store, if any — survived the
    /// kill), re-publishes the address book at a bumped epoch so
    /// clients and peers re-learn the shard's new socket, and rewires
    /// peer tables. The ring's key ownership is unchanged — this is an
    /// address-only membership transition. Errors if the shard is still
    /// alive or was never a member.
    pub fn restart_shard(&mut self, i: usize) -> std::io::Result<SocketAddr> {
        if self.is_alive(i) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("shard {i} is still alive"),
            ));
        }
        if !self.ring.shards().contains(&(i as u32)) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("shard {i} is not a cluster member"),
            ));
        }
        let proxy = self.proxies[i].clone();
        let server = ProxyServer::bind(
            "127.0.0.1:0",
            proxy.clone(),
            self.console.clone(),
            self.opts.server.clone(),
        )?;
        server.set_membership_view(self.view.clone());
        server.set_migrate_exporter(Arc::new(ShardExporter {
            proxy,
            view: self.view.clone(),
        }));
        let addr = server.addr();
        self.addrs[i] = addr;
        self.servers[i] = Some(server);
        self.watches[i] = self.attach_watch(i);
        self.ring.bump_epoch();
        self.rewire_peers();
        self.publish_view();
        Ok(addr)
    }

    /// Live membership: every shard that is both a ring member and
    /// currently serving, with its address.
    pub fn live_addrs(&self) -> Vec<(u32, SocketAddr)> {
        self.ring
            .shards()
            .iter()
            .copied()
            .filter(|&s| self.is_alive(s as usize))
            .map(|s| (s, self.addrs[s as usize]))
            .collect()
    }

    /// The shared membership view (epoch + published ring snapshot).
    pub fn membership_view(&self) -> Arc<MembershipView> {
        self.view.clone()
    }

    /// Pulls a stats report from every shard in *live membership* over
    /// the wire and merges them: joined shards appear as soon as they
    /// serve, and retired shards stop being polled (and reported
    /// unreachable) forever.
    pub fn fleet_stats(&self, hello: &Hello, net: NetConfig, include_spans: bool) -> FleetStats {
        collect_fleet_stats_live(&self.live_addrs(), hello, net, include_spans)
    }

    /// Number of shards (including killed ones — slots keep their ids).
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when the cluster has no shards (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Every shard's bound address, indexed by shard id.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The shared ring. Clients clone this (or rebuild it from the same
    /// `(shards, vnodes, seed)` triple) to agree on routing.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Shard `i`'s proxy (for stats inspection).
    pub fn proxy(&self, i: usize) -> &Arc<Proxy> {
        &self.proxies[i]
    }

    /// Shard `i`'s live server statistics (`None` once killed).
    pub fn shard_stats(&self, i: usize) -> Option<ServerStats> {
        self.servers
            .get(i)
            .and_then(|s| s.as_ref())
            .map(|s| s.stats())
    }

    /// Shard `i`'s telemetry plane (shared between its server and its
    /// proxy), `None` once the shard is killed.
    pub fn shard_telemetry(&self, i: usize) -> Option<Arc<Telemetry>> {
        self.servers
            .get(i)
            .and_then(|s| s.as_ref())
            .map(|s| s.telemetry())
    }

    /// Every live shard's stats report, indexed by shard id (`None` for
    /// killed shards). With `include_spans` the reports carry each
    /// shard's retained span window.
    pub fn stats_reports(&self, include_spans: bool) -> Vec<Option<StatsReport>> {
        self.servers
            .iter()
            .map(|slot| {
                slot.as_ref().map(|s| {
                    let t = s.telemetry();
                    if include_spans {
                        t.report()
                    } else {
                        t.report_metrics_only()
                    }
                })
            })
            .collect()
    }

    /// Fleet-wide metrics: every live shard's snapshot merged into one,
    /// as if the cluster were a single proxy.
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let reports = self.stats_reports(false);
        StatsReport::merge_metrics(reports.iter().flatten())
    }

    /// Shard `i`'s outbound peer-traffic counters, when peer fill is on.
    pub fn peer_stats(&self, i: usize) -> Option<PeerStats> {
        self.peers
            .get(i)
            .and_then(|p| p.as_ref())
            .map(|p| p.stats())
    }

    /// Abruptly stops shard `i` (its socket closes; in-flight
    /// connections die), simulating a shard failure. The ring is left
    /// unchanged — surviving the loss is the *client's* job, which is
    /// exactly what the failover tests exercise. Returns the dead
    /// shard's final statistics, or `None` if already killed.
    pub fn kill_shard(&mut self, i: usize) -> Option<ServerStats> {
        // The dead shard must stop probing peers (and peers will fail
        // open when probing it).
        if let Some(Some(_peer)) = self.peers.get(i) {
            self.proxies[i].clear_peer_cache();
        }
        if let Some(w) = self.watches.get_mut(i) {
            *w = None;
        }
        self.servers.get_mut(i)?.take().map(|s| s.shutdown())
    }

    /// True when shard `i` is still serving.
    pub fn is_alive(&self, i: usize) -> bool {
        self.servers.get(i).is_some_and(|s| s.is_some())
    }

    /// Stops every remaining shard and returns their final statistics,
    /// indexed by shard id (`None` for shards killed earlier).
    pub fn shutdown(mut self) -> Vec<Option<ServerStats>> {
        // Unwire peer caches first so no shard's request path touches a
        // dying sibling, and close the links' sockets.
        for (i, peer) in self.peers.iter().enumerate() {
            if peer.is_some() {
                self.proxies[i].clear_peer_cache();
            }
        }
        self.watches.clear();
        self.servers
            .iter_mut()
            .map(|slot| slot.take().map(|s| s.shutdown()))
            .collect()
    }
}
