//! `ProxyCluster`: N proxy shards behind N sockets, acting as one proxy.
//!
//! The paper's organization-wide proxy is a single chokepoint; this
//! module scales it out. Each shard is a full [`dvm_net::ProxyServer`]
//! wrapping its own `Proxy` (filters, cache, signer); a shared seeded
//! [`HashRing`] gives every participant — client or shard — the same
//! URL→shard map with zero coordination traffic. When peer cache-fill is
//! enabled, every shard gets a [`ClusterPeer`] wired into its proxy so a
//! local cache miss probes the URL's home shard before rewriting.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use dvm_monitor::AdminConsole;
use dvm_net::{Hello, NetConfig, ProxyServer, ServerConfig, ServerStats};
use dvm_proxy::Proxy;
use dvm_store::{Store, StoreConfig};
use dvm_telemetry::{MetricsSnapshot, StatsReport, Telemetry};

use crate::peer::{ClusterPeer, PeerLink, PeerStats};
use crate::ring::HashRing;

/// Cluster construction knobs.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Virtual nodes per shard on the ring.
    pub vnodes: u32,
    /// Ring seed; every client of this cluster must use the same seed.
    pub seed: u64,
    /// Per-shard server configuration (connection limits, faults).
    pub server: ServerConfig,
    /// Networking knobs for shard-to-shard peer links.
    pub peer_net: NetConfig,
    /// Whether shards probe the home shard's cache before rewriting.
    pub peer_fill: bool,
    /// When set, each shard's rewrite cache is backed by a persistent
    /// store at `<data_dir>/shard<i>`: a killed shard that restarts
    /// over the same directory serves its previous rewrites from disk.
    pub data_dir: Option<PathBuf>,
    /// Store tuning for persistent shards (segment size, durability).
    pub store: StoreConfig,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            vnodes: 128,
            seed: 0,
            server: ServerConfig::default(),
            peer_net: NetConfig::default(),
            peer_fill: true,
            data_dir: None,
            store: StoreConfig::default(),
        }
    }
}

/// A running cluster of proxy shards on loopback sockets.
pub struct ProxyCluster {
    servers: Vec<Option<ProxyServer>>,
    proxies: Vec<Arc<Proxy>>,
    peers: Vec<Option<Arc<ClusterPeer>>>,
    addrs: Vec<SocketAddr>,
    ring: HashRing,
}

impl std::fmt::Debug for ProxyCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProxyCluster")
            .field("shards", &self.addrs.len())
            .field("addrs", &self.addrs)
            .finish()
    }
}

impl ProxyCluster {
    /// Binds one server per proxy on `127.0.0.1:0`, builds the ring for
    /// exactly those shards, and (when enabled) wires peer cache-fill
    /// links between them. All shards share the optional console, so the
    /// administrator sees one organization regardless of shard count.
    pub fn start(
        proxies: Vec<Arc<Proxy>>,
        console: Option<Arc<Mutex<AdminConsole>>>,
        opts: ClusterOptions,
    ) -> std::io::Result<ProxyCluster> {
        if proxies.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a cluster needs at least one shard",
            ));
        }
        // Persistent shards open their stores before serving a single
        // request, so a restarted shard is warm from its first fetch.
        if let Some(data_dir) = &opts.data_dir {
            for (i, proxy) in proxies.iter().enumerate() {
                let store = Store::open(data_dir.join(format!("shard{i}")), opts.store.clone())
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                proxy.attach_store(store);
            }
        }
        let mut servers = Vec::with_capacity(proxies.len());
        let mut addrs = Vec::with_capacity(proxies.len());
        for proxy in &proxies {
            let server = ProxyServer::bind(
                "127.0.0.1:0",
                proxy.clone(),
                console.clone(),
                opts.server.clone(),
            )?;
            addrs.push(server.addr());
            servers.push(Some(server));
        }
        let ring = HashRing::with_shards(proxies.len() as u32, opts.vnodes, opts.seed);

        // Peer links can only be wired once every shard has a bound
        // address, hence the second pass.
        let mut peers = Vec::with_capacity(proxies.len());
        for (i, proxy) in proxies.iter().enumerate() {
            if !opts.peer_fill || proxies.len() < 2 {
                peers.push(None);
                continue;
            }
            let peer = Arc::new(ClusterPeer::new(i as u32, ring.clone()));
            let links: HashMap<u32, Arc<PeerLink>> = addrs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(j, &addr)| {
                    let hello = Hello {
                        user: format!("shard{i}"),
                        principal: "cluster-peer".into(),
                        ..Hello::default()
                    };
                    (
                        j as u32,
                        Arc::new(PeerLink::new(addr, hello, opts.peer_net)),
                    )
                })
                .collect();
            peer.set_links(links);
            proxy.set_peer_cache(peer.clone());
            peers.push(Some(peer));
        }

        Ok(ProxyCluster {
            servers,
            proxies,
            peers,
            addrs,
            ring,
        })
    }

    /// Number of shards (including killed ones — slots keep their ids).
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when the cluster has no shards (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Every shard's bound address, indexed by shard id.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The shared ring. Clients clone this (or rebuild it from the same
    /// `(shards, vnodes, seed)` triple) to agree on routing.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Shard `i`'s proxy (for stats inspection).
    pub fn proxy(&self, i: usize) -> &Arc<Proxy> {
        &self.proxies[i]
    }

    /// Shard `i`'s live server statistics (`None` once killed).
    pub fn shard_stats(&self, i: usize) -> Option<ServerStats> {
        self.servers
            .get(i)
            .and_then(|s| s.as_ref())
            .map(|s| s.stats())
    }

    /// Shard `i`'s telemetry plane (shared between its server and its
    /// proxy), `None` once the shard is killed.
    pub fn shard_telemetry(&self, i: usize) -> Option<Arc<Telemetry>> {
        self.servers
            .get(i)
            .and_then(|s| s.as_ref())
            .map(|s| s.telemetry())
    }

    /// Every live shard's stats report, indexed by shard id (`None` for
    /// killed shards). With `include_spans` the reports carry each
    /// shard's retained span window.
    pub fn stats_reports(&self, include_spans: bool) -> Vec<Option<StatsReport>> {
        self.servers
            .iter()
            .map(|slot| {
                slot.as_ref().map(|s| {
                    let t = s.telemetry();
                    if include_spans {
                        t.report()
                    } else {
                        t.report_metrics_only()
                    }
                })
            })
            .collect()
    }

    /// Fleet-wide metrics: every live shard's snapshot merged into one,
    /// as if the cluster were a single proxy.
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let reports = self.stats_reports(false);
        StatsReport::merge_metrics(reports.iter().flatten())
    }

    /// Shard `i`'s outbound peer-traffic counters, when peer fill is on.
    pub fn peer_stats(&self, i: usize) -> Option<PeerStats> {
        self.peers
            .get(i)
            .and_then(|p| p.as_ref())
            .map(|p| p.stats())
    }

    /// Abruptly stops shard `i` (its socket closes; in-flight
    /// connections die), simulating a shard failure. The ring is left
    /// unchanged — surviving the loss is the *client's* job, which is
    /// exactly what the failover tests exercise. Returns the dead
    /// shard's final statistics, or `None` if already killed.
    pub fn kill_shard(&mut self, i: usize) -> Option<ServerStats> {
        // The dead shard must stop probing peers (and peers will fail
        // open when probing it).
        if let Some(Some(_peer)) = self.peers.get(i) {
            self.proxies[i].clear_peer_cache();
        }
        self.servers.get_mut(i)?.take().map(|s| s.shutdown())
    }

    /// True when shard `i` is still serving.
    pub fn is_alive(&self, i: usize) -> bool {
        self.servers.get(i).is_some_and(|s| s.is_some())
    }

    /// Stops every remaining shard and returns their final statistics,
    /// indexed by shard id (`None` for shards killed earlier).
    pub fn shutdown(mut self) -> Vec<Option<ServerStats>> {
        // Unwire peer caches first so no shard's request path touches a
        // dying sibling, and close the links' sockets.
        for (i, peer) in self.peers.iter().enumerate() {
            if peer.is_some() {
                self.proxies[i].clear_peer_cache();
            }
        }
        self.servers
            .iter_mut()
            .map(|slot| slot.take().map(|s| s.shutdown()))
            .collect()
    }
}
