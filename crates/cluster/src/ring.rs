//! A consistent-hash ring with virtual nodes.
//!
//! The ring maps class URLs to shards so that every client (and every
//! shard's peer-fill logic) agrees on a URL's *home shard* without any
//! coordination traffic: agreement is a pure function of (seed, shard
//! set, vnode count).
//!
//! Placement is claim-style rather than random-point-style: the circle
//! is cut into `vnodes` blocks of `n` equal segments, and each block is
//! a seeded permutation of the shards. Every shard therefore owns
//! exactly `vnodes` equal arcs — its virtual nodes — so balance is
//! exact by construction (the only variance left is the key hash's
//! multinomial noise), instead of the ±1/√vnodes arc-length lottery a
//! randomly-thrown ring pays. Removing a shard hands each of its arcs
//! to the next arc's owner clockwise, which remaps *only* the removed
//! shard's keys — the property that makes failover cheap: no
//! reshuffling of the surviving shards' cache contents.
//!
//! Hashing is from scratch (FNV-1a into a SplitMix64 finalizer): the
//! reproduction builds its substrate rather than importing it, and the
//! ring must be deterministic across processes — a client and a fleet
//! of shards each build their own copy and *must* agree.

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the key, then mixed: string keys land uniformly even
/// when they share long prefixes (`class://com/example/...`).
fn hash_key(seed: u64, key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(h)
}

/// Seeded Fisher–Yates over `items`, independent per `block`.
fn shuffle_block(seed: u64, block: u64, items: &mut [u32]) {
    let mut state = mix64(seed ^ block.wrapping_mul(0xA24B_AED4_963E_E407));
    for i in (1..items.len()).rev() {
        state = mix64(state);
        let j = (state % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// One segment changing owner in a membership transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMove {
    /// Segment index on the ring.
    pub segment: u32,
    /// The owner before the transition.
    pub from: u32,
    /// The owner after the transition.
    pub to: u32,
}

/// The explicit, minimal remap produced by an online membership change:
/// exactly the segments whose owner changed, nothing else. The plan is
/// what drives live cache migration — each `from` shard streams the keys
/// of its moved segments to the matching `to` shard — and its `epoch` is
/// the version clients compare against to learn they are stale.
#[derive(Debug, Clone, Default)]
pub struct RemapPlan {
    /// The ring epoch *after* the transition this plan describes.
    pub epoch: u64,
    /// Every segment that changed hands.
    pub moves: Vec<SegmentMove>,
    /// Total segments on the ring (for computing moved fractions).
    pub segments_total: u32,
}

impl RemapPlan {
    /// True when the transition moved nothing.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Number of segments that changed owner.
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Distinct shards losing segments, sorted (the migration sources).
    pub fn sources(&self) -> Vec<u32> {
        let mut s: Vec<u32> = self.moves.iter().map(|m| m.from).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Distinct shards gaining segments, sorted (the migration targets).
    pub fn targets(&self) -> Vec<u32> {
        let mut t: Vec<u32> = self.moves.iter().map(|m| m.to).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// True when `segment` changes owner under this plan.
    pub fn covers_segment(&self, segment: u32) -> bool {
        self.moves.iter().any(|m| m.segment == segment)
    }
}

/// A seeded, deterministic consistent-hash ring over shard ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Owner of each equal-width segment, clockwise. Initially
    /// `vnodes` blocks × one segment per shard; removals reassign
    /// segments in place without resizing.
    owners: Vec<u32>,
    /// Distinct live shard ids, sorted.
    shards: Vec<u32>,
    vnodes: u32,
    seed: u64,
    /// Monotonically increasing version of the membership. Construction
    /// (and the offline `add_shard`/`remove_shard` used by fixed-size
    /// clusters) leaves it at zero; every *online* transition
    /// ([`HashRing::join_shard`] / [`HashRing::retire_shard`]) bumps it,
    /// and clients compare epochs to learn their routing is stale.
    epoch: u64,
}

impl HashRing {
    /// Creates an empty ring with `vnodes` virtual nodes per shard.
    pub fn new(vnodes: u32, seed: u64) -> HashRing {
        HashRing {
            owners: Vec::new(),
            shards: Vec::new(),
            vnodes: vnodes.max(1),
            seed,
            epoch: 0,
        }
    }

    /// Creates a ring populated with shards `0..n`.
    pub fn with_shards(n: u32, vnodes: u32, seed: u64) -> HashRing {
        let mut ring = HashRing::new(vnodes, seed);
        for shard in 0..n {
            ring.add_shard(shard);
        }
        ring
    }

    /// Rebuilds segment ownership from the live shard set: one block of
    /// equal segments per vnode, each block an independently seeded
    /// permutation of the shards.
    fn rebuild(&mut self) {
        self.owners.clear();
        if self.shards.is_empty() {
            return;
        }
        let mut block = self.shards.clone();
        for b in 0..self.vnodes as u64 {
            block.copy_from_slice(&self.shards);
            shuffle_block(self.seed, b, &mut block);
            self.owners.extend_from_slice(&block);
        }
    }

    /// Adds `shard` (idempotent). Addition rebuilds the ring — in this
    /// system cluster membership is fixed at start, and it is *removal*
    /// (the failure path) that must disturb nothing else.
    pub fn add_shard(&mut self, shard: u32) {
        if self.shards.contains(&shard) {
            return;
        }
        self.shards.push(shard);
        self.shards.sort_unstable();
        self.rebuild();
    }

    /// Removes `shard`, handing each of its segments to the next
    /// segment's owner clockwise — every other shard's arcs are
    /// untouched, so only the removed shard's keys change home.
    pub fn remove_shard(&mut self, shard: u32) {
        if !self.shards.contains(&shard) {
            return;
        }
        self.shards.retain(|&s| s != shard);
        if self.shards.is_empty() {
            self.owners.clear();
            return;
        }
        let n = self.owners.len();
        for p in 0..n {
            if self.owners[p] != shard {
                continue;
            }
            // Walk clockwise to the first segment owned by a survivor.
            // (Consecutive segments may all belong to `shard` when the
            // block permutations happen to align.)
            let mut q = (p + 1) % n;
            while self.owners[q] == shard {
                q = (q + 1) % n;
            }
            self.owners[p] = self.owners[q];
        }
    }

    /// Adds `shard` online with a *minimal* remap: the segment layout is
    /// left in place and the new shard claims exactly its fair share of
    /// segments — a deterministic, seeded pick spread proportionally
    /// across the current owners — so the only keys whose home changes
    /// are the ones moving *to* the new shard. Returns the explicit
    /// remap plan and bumps the epoch. Idempotent for present shards
    /// (empty plan, epoch unchanged).
    pub fn join_shard(&mut self, shard: u32) -> RemapPlan {
        if self.shards.contains(&shard) {
            return RemapPlan {
                epoch: self.epoch,
                moves: Vec::new(),
                segments_total: self.owners.len() as u32,
            };
        }
        if self.shards.is_empty() {
            // First member: lay out one block of segments, all its own.
            self.shards.push(shard);
            self.owners = vec![shard; self.vnodes as usize];
            self.epoch += 1;
            return RemapPlan {
                epoch: self.epoch,
                moves: Vec::new(),
                segments_total: self.owners.len() as u32,
            };
        }
        self.shards.push(shard);
        self.shards.sort_unstable();
        let n = self.shards.len() as u64;
        let total = self.owners.len();
        let target = (total as u64 / n) as usize;

        // Group segments by current owner, preserving segment order.
        let mut owned: Vec<(u32, Vec<usize>)> = Vec::new();
        for (p, &o) in self.owners.iter().enumerate() {
            match owned.iter_mut().find(|(id, _)| *id == o) {
                Some((_, v)) => v.push(p),
                None => owned.push((o, vec![p])),
            }
        }
        owned.sort_by_key(|(id, _)| *id);

        // Largest-remainder apportionment: each owner cedes ~1/n of its
        // segments so post-join counts stay within one segment of fair.
        let mut takes: Vec<usize> = owned.iter().map(|(_, v)| v.len() / n as usize).collect();
        let mut deficit = target.saturating_sub(takes.iter().sum::<usize>());
        let mut order: Vec<usize> = (0..owned.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(owned[i].1.len() % n as usize), owned[i].0));
        while deficit > 0 {
            let before = deficit;
            for &i in &order {
                if deficit == 0 {
                    break;
                }
                if takes[i] < owned[i].1.len() {
                    takes[i] += 1;
                    deficit -= 1;
                }
            }
            if deficit == before {
                break; // nothing left to cede (degenerate tiny rings)
            }
        }

        // Which of an owner's segments move is a seeded rank over
        // (seed, joiner, segment): deterministic, so two replicas
        // applying the same join agree segment for segment.
        let mut moves = Vec::new();
        for ((owner, segs), take) in owned.into_iter().zip(takes) {
            let mut ranked = segs;
            ranked.sort_by_key(|&p| {
                mix64(self.seed ^ (shard as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ p as u64)
            });
            for &p in ranked.iter().take(take) {
                self.owners[p] = shard;
                moves.push(SegmentMove {
                    segment: p as u32,
                    from: owner,
                    to: shard,
                });
            }
        }
        moves.sort_by_key(|m| m.segment);
        self.epoch += 1;
        RemapPlan {
            epoch: self.epoch,
            moves,
            segments_total: total as u32,
        }
    }

    /// Removes `shard` online, handing each of its segments to the next
    /// surviving owner clockwise (the same minimal remap as
    /// [`HashRing::remove_shard`]) — but returns the explicit plan and
    /// bumps the epoch, so a departure can *drain*: every move names the
    /// survivor that must receive the departing shard's keys before its
    /// socket closes. Unknown shards yield an empty plan.
    pub fn retire_shard(&mut self, shard: u32) -> RemapPlan {
        let total = self.owners.len() as u32;
        if !self.shards.contains(&shard) {
            return RemapPlan {
                epoch: self.epoch,
                moves: Vec::new(),
                segments_total: total,
            };
        }
        let before = self.owners.clone();
        self.remove_shard(shard);
        let mut moves = Vec::new();
        for (p, (&was, &now)) in before.iter().zip(&self.owners).enumerate() {
            if was != now {
                moves.push(SegmentMove {
                    segment: p as u32,
                    from: was,
                    to: now,
                });
            }
        }
        self.epoch += 1;
        RemapPlan {
            epoch: self.epoch,
            moves,
            segments_total: total,
        }
    }

    /// The ring's membership version (see the `epoch` field docs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the epoch without remapping any segment — used for
    /// address-only membership transitions (a shard restarting at a new
    /// socket keeps its ownership but clients must relearn where it is).
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The raw segment-owner table, clockwise (for snapshot encoding).
    pub fn owners(&self) -> &[u32] {
        &self.owners
    }

    /// Rebuilds a ring from raw snapshot state, e.g. one received in a
    /// `RING_UPDATE`. The caller vouches that `owners` only names shards
    /// in `shards`; routing treats the table as authoritative either way.
    pub fn from_snapshot(
        vnodes: u32,
        seed: u64,
        epoch: u64,
        shards: Vec<u32>,
        owners: Vec<u32>,
    ) -> HashRing {
        HashRing {
            owners,
            shards,
            vnodes: vnodes.max(1),
            seed,
            epoch,
        }
    }

    /// The segment index `key` hashes into (for migration filters and
    /// remap-plan checks).
    pub fn segment_of(&self, key: &str) -> Option<u32> {
        self.segment(key).map(|i| i as u32)
    }

    /// The current shard ids, sorted.
    pub fn shards(&self) -> &[u32] {
        &self.shards
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when no shard is on the ring.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// The seed the ring (and every replica of it) was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The segment `key`'s position falls in.
    fn segment(&self, key: &str) -> Option<usize> {
        if self.owners.is_empty() {
            return None;
        }
        let pos = hash_key(self.seed, key);
        // Multiply-shift maps the full u64 range onto segment indices
        // without modulo bias.
        Some(((pos as u128 * self.owners.len() as u128) >> 64) as usize)
    }

    /// The home shard of `key`: owner of the segment the key hashes
    /// into.
    pub fn home(&self, key: &str) -> Option<u32> {
        self.segment(key).map(|i| self.owners[i])
    }

    /// Every shard in failover-preference order for `key`: the home
    /// shard first, then each subsequent *distinct* shard walking
    /// clockwise. Clients try these in order; the prefix of length `r`
    /// is also the natural replica set for replication policies.
    pub fn route(&self, key: &str) -> Vec<u32> {
        let Some(start) = self.segment(key) else {
            return Vec::new();
        };
        let mut order = Vec::with_capacity(self.shards.len());
        for step in 0..self.owners.len() {
            let shard = self.owners[(start + step) % self.owners.len()];
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == self.shards.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = HashRing::with_shards(5, 64, 42);
        let b = HashRing::with_shards(5, 64, 42);
        for i in 0..1000 {
            let key = format!("class://k{i}");
            assert_eq!(a.home(&key), b.home(&key));
            assert_eq!(a.route(&key), b.route(&key));
        }
    }

    #[test]
    fn different_seeds_shuffle_ownership() {
        let a = HashRing::with_shards(4, 64, 1);
        let b = HashRing::with_shards(4, 64, 2);
        let moved = (0..1000)
            .filter(|i| {
                let key = format!("class://k{i}");
                a.home(&key) != b.home(&key)
            })
            .count();
        assert!(moved > 500, "only {moved}/1000 keys moved between seeds");
    }

    #[test]
    fn route_orders_every_shard_starting_at_home() {
        let ring = HashRing::with_shards(6, 64, 7);
        let order = ring.route("class://demo/App");
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], ring.home("class://demo/App").unwrap());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, ring.shards());
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut a = HashRing::new(64, 9);
        for s in [3, 0, 2, 1] {
            a.add_shard(s);
        }
        let b = HashRing::with_shards(4, 64, 9);
        for i in 0..500 {
            let key = format!("k{i}");
            assert_eq!(a.home(&key), b.home(&key));
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(64, 0);
        assert!(ring.home("anything").is_none());
        assert!(ring.route("anything").is_empty());
        assert!(ring.is_empty());
    }

    #[test]
    fn removal_remaps_only_the_removed_shards_keys() {
        let mut ring = HashRing::with_shards(5, 64, 5);
        let keys: Vec<String> = (0..2000).map(|i| format!("class://k{i}")).collect();
        let before: Vec<u32> = keys.iter().map(|k| ring.home(k).unwrap()).collect();
        ring.remove_shard(2);
        for (k, &was) in keys.iter().zip(&before) {
            let now = ring.home(k).unwrap();
            if was != 2 {
                assert_eq!(now, was, "{k} moved despite its home surviving");
            } else {
                assert_ne!(now, 2, "{k} still maps to the removed shard");
            }
        }
    }

    #[test]
    fn join_remaps_only_keys_moving_to_the_new_shard() {
        let mut ring = HashRing::with_shards(3, 128, 11);
        let keys: Vec<String> = (0..2000).map(|i| format!("class://k{i}")).collect();
        let before: Vec<u32> = keys.iter().map(|k| ring.home(k).unwrap()).collect();
        let plan = ring.join_shard(3);
        assert_eq!(plan.epoch, 1);
        assert!(!plan.is_empty());
        for (k, &was) in keys.iter().zip(&before) {
            let now = ring.home(k).unwrap();
            if now != was {
                assert_eq!(now, 3, "{k} moved {was}->{now}, not to the joiner");
            }
        }
    }

    #[test]
    fn join_plan_matches_ownership_delta() {
        let mut ring = HashRing::with_shards(4, 64, 23);
        let before = ring.owners().to_vec();
        let plan = ring.join_shard(9);
        let after = ring.owners();
        let mut delta = Vec::new();
        for (p, (&was, &now)) in before.iter().zip(after).enumerate() {
            if was != now {
                assert_eq!(now, 9);
                delta.push((p as u32, was));
            }
        }
        assert_eq!(plan.moves.len(), delta.len());
        for (m, (seg, from)) in plan.moves.iter().zip(delta) {
            assert_eq!((m.segment, m.from, m.to), (seg, from, 9));
        }
        assert_eq!(plan.targets(), vec![9]);
    }

    #[test]
    fn join_keeps_balance_near_fair() {
        let mut ring = HashRing::with_shards(3, 128, 7);
        ring.join_shard(3);
        ring.join_shard(4);
        ring.join_shard(5);
        let total = ring.owners().len();
        let fair = total / 6;
        for &s in &[0u32, 1, 2, 3, 4, 5] {
            let c = ring.owners().iter().filter(|&&o| o == s).count();
            assert!(
                (c as i64 - fair as i64).abs() <= 2,
                "shard {s}: {c} segments vs fair {fair}"
            );
        }
    }

    #[test]
    fn retire_plan_names_clockwise_survivors_and_bumps_epoch() {
        let mut ring = HashRing::with_shards(5, 64, 5);
        let removal_only = {
            let mut r = ring.clone();
            r.remove_shard(2);
            r.owners().to_vec()
        };
        let plan = ring.retire_shard(2);
        assert_eq!(ring.epoch(), 1);
        assert_eq!(plan.epoch, 1);
        assert_eq!(ring.owners(), &removal_only[..]);
        assert_eq!(plan.sources(), vec![2]);
        assert!(plan.moves.iter().all(|m| m.to != 2));
        // Idempotent on unknown shard: empty plan, epoch untouched.
        let noop = ring.retire_shard(2);
        assert!(noop.is_empty());
        assert_eq!(ring.epoch(), 1);
    }

    #[test]
    fn join_is_deterministic_across_replicas() {
        let mut a = HashRing::with_shards(3, 128, 77);
        let mut b = HashRing::with_shards(3, 128, 77);
        let pa = a.join_shard(3);
        let pb = b.join_shard(3);
        assert_eq!(pa.moves, pb.moves);
        assert_eq!(a.owners(), b.owners());
    }

    #[test]
    fn snapshot_roundtrip_preserves_routing() {
        let mut ring = HashRing::with_shards(4, 64, 13);
        ring.join_shard(4);
        let copy = HashRing::from_snapshot(
            ring.vnodes(),
            ring.seed(),
            ring.epoch(),
            ring.shards().to_vec(),
            ring.owners().to_vec(),
        );
        assert_eq!(copy.epoch(), ring.epoch());
        for i in 0..500 {
            let k = format!("class://k{i}");
            assert_eq!(copy.home(&k), ring.home(&k));
        }
    }

    #[test]
    fn balance_is_exact_by_construction() {
        // Claim-style placement: every shard owns exactly `vnodes`
        // equal-width segments, so key counts deviate from fair share
        // only by the key hash's multinomial noise.
        for shards in [2u32, 3, 4, 8] {
            let ring = HashRing::with_shards(shards, 64, 99);
            let keys = 8000u32;
            let mut counts = vec![0u32; shards as usize];
            for i in 0..keys {
                counts[ring.home(&format!("class://k{i}")).unwrap() as usize] += 1;
            }
            let fair = keys as f64 / shards as f64;
            for (s, &c) in counts.iter().enumerate() {
                let dev = (c as f64 - fair).abs() / fair;
                assert!(
                    dev < 0.15,
                    "shard {s}/{shards}: {c} keys vs fair {fair:.0} ({dev:.3})"
                );
            }
        }
    }
}
