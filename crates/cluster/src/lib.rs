//! `dvm-cluster`: the organization's proxy, sharded.
//!
//! The paper's architecture funnels every client through one
//! organization proxy — a single chokepoint for rewriting, caching, and
//! signing. This crate scales that proxy out into N shards that act as
//! one logical service:
//!
//! - [`ring`] — a from-scratch seeded consistent-hash ring with virtual
//!   nodes. Routing is a pure function of `(seed, shard set, vnodes)`,
//!   so clients and shards agree on every URL's *home shard* with zero
//!   coordination traffic, and removing a shard remaps only that
//!   shard's keys.
//! - [`cluster`] — [`ProxyCluster`], which binds one
//!   [`dvm_net::ProxyServer`] per shard and wires the shards together.
//! - [`client`] — [`ClusterClassProvider`], a `ClassProvider` that
//!   resolves the ring and *fails over*: a transport drop or typed
//!   `Overloaded` rejection moves immediately to the next replica, and
//!   persistently failing shards are quarantined behind the circuit
//!   breaker in [`health`] (closed → open → half-open probe).
//! - [`stats`] — the pull side of the stats plane:
//!   [`collect_fleet_stats`] asks every shard for its
//!   `STATS_RESPONSE` over the wire and merges the answers into one
//!   fleet-wide metrics snapshot, tolerating dead shards.
//! - [`peer`] — peer cache-fill over the wire protocol's
//!   `PEER_GET`/`PEER_PUT` frames: on a local rewrite-cache miss a
//!   shard asks the URL's home shard for its cached copy before paying
//!   the full rewrite cost, and pushes classes it rewrites on others'
//!   behalf back to their home. Strictly fail-open.
//!
//! Everything rides the existing substrate: shards are unmodified
//! `dvm_proxy::Proxy` pipelines behind `dvm_net` sockets, signatures
//! verify end-to-end regardless of which shard (or whose cache) served
//! the bytes, and all shards report into one `AdminConsole`.

pub mod client;
pub mod cluster;
pub mod health;
pub mod peer;
pub mod ring;
pub mod snapshot;
pub mod stats;

pub use client::{
    ClusterClassProvider, ClusterClientConfig, ClusterClientStats, ClusterError, TransferHook,
};
pub use cluster::{ClusterOptions, ProxyCluster, WatchScrape};
pub use health::{HealthConfig, HealthTracker};
pub use peer::{ClusterPeer, PeerLink, PeerStats};
pub use ring::{HashRing, RemapPlan, SegmentMove};
pub use snapshot::{RingSnapshot, SnapshotError};
pub use stats::{collect_fleet_stats, collect_fleet_stats_live, FleetStats, ShardReport};
