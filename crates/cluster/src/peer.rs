//! Peer cache-fill: shard-to-shard traffic over the same wire protocol.
//!
//! When a shard misses its local rewrite cache, the class may already be
//! rewritten on the URL's *home shard* (the one the ring sends most
//! clients to). Rather than pay the full rewrite cost, the shard probes
//! the home shard with a `PEER_GET`; and after it does rewrite a class
//! it does not own, it pushes the result home with a fire-and-forget
//! `PEER_PUT` so the next asker finds it there.
//!
//! Both paths are strictly fail-open: any transport trouble, overload
//! rejection, or cache miss simply falls back to the local rewrite. A
//! peer probe must never be worse than not probing at all.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use dvm_net::{ErrorCode, Frame, Hello, NetConfig};
use dvm_proxy::PeerCache;

use crate::ring::HashRing;

/// Counters for one shard's outbound peer traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeerStats {
    /// `PEER_GET` probes sent.
    pub gets: u64,
    /// Probes answered with bytes.
    pub hits: u64,
    /// `PEER_PUT` offers delivered.
    pub puts: u64,
    /// Probes or offers abandoned to a transport failure, overload
    /// rejection, or remote miss.
    pub failures: u64,
}

struct LinkConn {
    stream: TcpStream,
    next_request: u32,
}

/// One shard's persistent connection to a single peer shard.
///
/// The connection is lazy, serialized by a mutex (peer traffic is rare
/// enough that head-of-line blocking is irrelevant), and rebuilt at most
/// once per operation before failing open.
pub struct PeerLink {
    addr: SocketAddr,
    hello: Hello,
    net: NetConfig,
    conn: Mutex<Option<LinkConn>>,
}

impl std::fmt::Debug for PeerLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerLink")
            .field("addr", &self.addr)
            .finish()
    }
}

impl PeerLink {
    /// Creates a lazy link to the peer at `addr`, identifying itself
    /// with `hello` (conventionally user `shard<N>`).
    pub fn new(addr: SocketAddr, hello: Hello, net: NetConfig) -> PeerLink {
        PeerLink {
            addr,
            hello,
            net,
            conn: Mutex::new(None),
        }
    }

    fn connect(&self) -> Option<LinkConn> {
        let stream = TcpStream::connect_timeout(&self.addr, self.net.connect_timeout).ok()?;
        stream.set_read_timeout(Some(self.net.read_timeout)).ok()?;
        stream
            .set_write_timeout(Some(self.net.write_timeout))
            .ok()?;
        let _ = stream.set_nodelay(true);
        let mut conn = LinkConn {
            stream,
            next_request: 1,
        };
        Frame::Hello(self.hello.clone())
            .write_to(&mut conn.stream)
            .ok()?;
        match Frame::read_from(&mut conn.stream) {
            Ok(Frame::Welcome { .. }) => Some(conn),
            // Anything else — including a typed Overloaded rejection —
            // means this peer cannot help right now; fail open.
            _ => None,
        }
    }

    /// The probe outcome distinguishes "no bytes, connection fine" from
    /// "connection is broken, retry on a fresh one".
    fn get_once(&self, conn: &mut LinkConn, url: &str) -> Result<Option<Vec<u8>>, ()> {
        let request_id = conn.next_request;
        conn.next_request = conn.next_request.wrapping_add(1).max(1);
        Frame::PeerGet {
            request_id,
            url: url.to_owned(),
        }
        .write_to(&mut conn.stream)
        .map_err(|_| ())?;
        match Frame::read_from(&mut conn.stream) {
            Ok(Frame::CodeResponse {
                request_id: rid,
                bytes,
                ..
            }) if rid == request_id => Ok(Some(bytes)),
            Ok(Frame::Error {
                code: ErrorCode::CacheMiss,
                ..
            }) => Ok(None),
            // Wrong id, other error codes, or transport failure: treat
            // the connection as suspect.
            _ => Err(()),
        }
    }

    /// Asks the peer for its cached copy of `url`. `None` on miss or any
    /// failure (after one reconnect attempt).
    pub fn get(&self, url: &str) -> Option<Vec<u8>> {
        let mut guard = self.conn.lock();
        for fresh in [false, true] {
            if guard.is_none() || fresh {
                *guard = self.connect();
            }
            let conn = guard.as_mut()?;
            match self.get_once(conn, url) {
                Ok(answer) => return answer,
                Err(()) => *guard = None,
            }
        }
        None
    }

    /// Offers `bytes` for `url` to the peer, fire-and-forget. Returns
    /// `true` when the frame was written (after at most one reconnect).
    pub fn put(&self, url: &str, bytes: &[u8]) -> bool {
        let frame = Frame::PeerPut {
            url: url.to_owned(),
            bytes: bytes.to_vec(),
        };
        let mut guard = self.conn.lock();
        for fresh in [false, true] {
            if guard.is_none() || fresh {
                *guard = self.connect();
            }
            let Some(conn) = guard.as_mut() else {
                return false;
            };
            if frame.write_to(&mut conn.stream).is_ok() {
                return true;
            }
            *guard = None;
        }
        false
    }

    /// Closes the link (re-established lazily on next use).
    pub fn close(&self) {
        if let Some(mut conn) = self.conn.lock().take() {
            let _ = Frame::Bye.write_to(&mut conn.stream);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// One shard's view of its peers: the ring for home lookup plus a link
/// per other shard. Installed into the shard's `Proxy` via
/// [`dvm_proxy::Proxy::set_peer_cache`].
pub struct ClusterPeer {
    shard: u32,
    /// The ring is behind a lock so the membership plane can swap in a
    /// new epoch while requests are in flight; a home lookup sees either
    /// the old owner or the new one, never a torn table.
    ring: RwLock<HashRing>,
    links: RwLock<HashMap<u32, Arc<PeerLink>>>,
    stats: Mutex<PeerStats>,
}

impl std::fmt::Debug for ClusterPeer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterPeer")
            .field("shard", &self.shard)
            .field("links", &self.links.read().len())
            .finish()
    }
}

impl ClusterPeer {
    /// Creates a peer table for `shard`; links are installed afterwards
    /// with [`ClusterPeer::set_links`] once every shard's server has a
    /// bound address.
    pub fn new(shard: u32, ring: HashRing) -> ClusterPeer {
        ClusterPeer {
            shard,
            ring: RwLock::new(ring),
            links: RwLock::new(HashMap::new()),
            stats: Mutex::new(PeerStats::default()),
        }
    }

    /// Installs the link table (shard id → link).
    pub fn set_links(&self, links: HashMap<u32, Arc<PeerLink>>) {
        *self.links.write() = links;
    }

    /// Swaps in the ring for a new epoch (membership change). Peer
    /// traffic started under the old epoch completes against whichever
    /// shard it already chose — both sides still verify signatures, so
    /// a stale home costs a miss, never wrong bytes.
    pub fn set_ring(&self, ring: HashRing) {
        *self.ring.write() = ring;
    }

    /// The epoch of the ring this peer table routes with.
    pub fn ring_epoch(&self) -> u64 {
        self.ring.read().epoch()
    }

    /// Adds (or replaces) the link to one shard — a join in progress.
    pub fn add_link(&self, shard: u32, link: Arc<PeerLink>) {
        self.links.write().insert(shard, link);
    }

    /// Drops the link to a departed shard; its connection closes.
    pub fn remove_link(&self, shard: u32) {
        if let Some(link) = self.links.write().remove(&shard) {
            link.close();
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PeerStats {
        *self.stats.lock()
    }

    fn link_for_home(&self, url: &str) -> Option<Arc<PeerLink>> {
        let home = self.ring.read().home(url)?;
        if home == self.shard {
            // This shard *is* the home: nothing to ask, nowhere to push.
            return None;
        }
        self.links.read().get(&home).cloned()
    }
}

impl PeerCache for ClusterPeer {
    fn fetch_from_home(&self, url: &str) -> Option<Vec<u8>> {
        let link = self.link_for_home(url)?;
        self.stats.lock().gets += 1;
        match link.get(url) {
            Some(bytes) => {
                self.stats.lock().hits += 1;
                Some(bytes)
            }
            None => {
                self.stats.lock().failures += 1;
                None
            }
        }
    }

    fn offer_to_home(&self, url: &str, bytes: &[u8]) -> bool {
        let Some(link) = self.link_for_home(url) else {
            return false;
        };
        if link.put(url, bytes) {
            self.stats.lock().puts += 1;
            true
        } else {
            self.stats.lock().failures += 1;
            false
        }
    }
}
