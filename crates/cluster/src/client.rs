//! `ClusterClassProvider`: ring-routed fetches with failover and
//! quarantine.
//!
//! The client resolves each URL on its own copy of the [`HashRing`] and
//! walks the resulting shard order: home shard first, then each replica.
//! A retryable failure — transport drop or a typed `Overloaded`
//! rejection — fails over to the next shard *immediately* (no
//! same-endpoint backoff loop: that is [`dvm_net::NetClassProvider`]'s
//! single-server behaviour, deliberately not replicated here). Shards
//! that keep failing are quarantined behind a circuit breaker and
//! skipped without paying their connect timeout; a half-open probe
//! readmits them when they recover.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use dvm_jvm::ClassProvider;
use dvm_net::{Frame, Hello, NetClassProvider, NetClientStats, NetConfig, NetError, NetTransfer};
use dvm_proxy::Signer;
use dvm_telemetry::{Counter, Histogram, Registry, SpanId, Telemetry, TraceContext, TraceId};

use crate::health::{HealthConfig, HealthTracker};
use crate::ring::HashRing;
use crate::snapshot::RingSnapshot;

/// Observer invoked once per successful transfer (shared across every
/// per-shard connection).
pub type TransferHook = Box<dyn FnMut(&NetTransfer) + Send>;

/// Cluster-client tuning.
#[derive(Debug, Clone, Copy)]
pub struct ClusterClientConfig {
    /// Per-shard networking knobs (timeouts, jitter seed).
    pub net: NetConfig,
    /// Circuit-breaker tuning for shard quarantine.
    pub health: HealthConfig,
    /// Full passes over the failover order before giving up.
    pub rounds: u32,
    /// Pause between passes (lets a briefly-overloaded cluster drain).
    pub round_backoff: Duration,
    /// When true, a round that fails on every shard triggers a
    /// `RING_UPDATE` pull before the next pass, so the client relearns
    /// membership (new shards, retired shards, restarted addresses)
    /// without reconnecting by hand. Off by default: clients routed
    /// through interposers (tests, chaos harness) must keep the
    /// addresses they were given.
    pub ring_sync: bool,
}

impl Default for ClusterClientConfig {
    fn default() -> Self {
        ClusterClientConfig {
            net: NetConfig::default(),
            health: HealthConfig::default(),
            rounds: 3,
            round_backoff: Duration::from_millis(20),
            ring_sync: false,
        }
    }
}

/// Counters for one cluster client's lifetime.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterClientStats {
    /// Fetches attempted (one per `fetch` call).
    pub requests: u64,
    /// Fetches answered by a shard other than the URL's home.
    pub non_home_serves: u64,
    /// Individual failovers (a retryable failure moving on to the next
    /// shard or round).
    pub failovers: u64,
    /// Shards skipped because their circuit was open.
    pub quarantine_skips: u64,
    /// Rounds where every shard was quarantined and one was force-probed.
    pub desperation_probes: u64,
    /// `RING_UPDATE` pulls that installed a newer ring epoch.
    pub ring_syncs: u64,
}

/// A cluster fetch failure.
#[derive(Debug)]
pub enum ClusterError {
    /// The ring has no shards.
    NoShards,
    /// Every shard failed retryably in every round; wraps the last error.
    Exhausted(Box<NetError>),
    /// A shard answered with a non-retryable failure (`NotFound`, a
    /// filter rejection, a bad signature): failing over cannot help,
    /// because every shard would give the same answer.
    Fatal(NetError),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoShards => write!(f, "cluster has no shards"),
            ClusterError::Exhausted(e) => write!(f, "every shard failed: {e}"),
            ClusterError::Fatal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Pre-registered telemetry handles for the cluster client's hot path.
#[derive(Debug, Clone)]
struct ClusterMetrics {
    requests: Arc<Counter>,
    failovers: Arc<Counter>,
    quarantine_skips: Arc<Counter>,
    non_home_serves: Arc<Counter>,
    desperation_probes: Arc<Counter>,
    ring_syncs: Arc<Counter>,
    fetch_ns: Arc<Histogram>,
}

impl ClusterMetrics {
    fn register(registry: &Registry) -> ClusterMetrics {
        ClusterMetrics {
            requests: registry.counter("cluster.requests"),
            failovers: registry.counter("cluster.failovers"),
            quarantine_skips: registry.counter("cluster.quarantine.skips"),
            non_home_serves: registry.counter("cluster.non_home_serves"),
            desperation_probes: registry.counter("cluster.desperation_probes"),
            ring_syncs: registry.counter("cluster.ring_syncs"),
            fetch_ns: registry.histogram("cluster.fetch_ns"),
        }
    }
}

/// A `ClassProvider` spreading fetches over a shard cluster.
///
/// Membership is dynamic: the shard table is keyed by ring id (ids need
/// not be contiguous once shards join and retire), and
/// [`ClusterClassProvider::sync_ring`] pulls the cluster's published
/// ring snapshot to learn new epochs at runtime.
pub struct ClusterClassProvider {
    addrs: HashMap<u32, SocketAddr>,
    ring: HashRing,
    hello: Hello,
    signer: Option<Signer>,
    config: ClusterClientConfig,
    providers: HashMap<u32, NetClassProvider>,
    health: HealthTracker,
    stats: ClusterClientStats,
    hook: Arc<Mutex<Option<TransferHook>>>,
    telemetry: Arc<Telemetry>,
    metrics: ClusterMetrics,
}

impl std::fmt::Debug for ClusterClassProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterClassProvider")
            .field("shards", &self.addrs.len())
            .field("user", &self.hello.user)
            .finish()
    }
}

impl ClusterClassProvider {
    /// Creates a provider over `addrs` (indexed by shard id) routed by
    /// `ring`. The ring must cover exactly the shard ids `0..addrs.len()`
    /// — clone it from [`crate::ProxyCluster::ring`] or rebuild it from
    /// the same `(shards, vnodes, seed)` triple.
    ///
    /// Per-shard connections are lazy: a client whose working set homes
    /// onto one shard never touches the others.
    pub fn new(
        addrs: Vec<SocketAddr>,
        ring: HashRing,
        hello: Hello,
        signer: Option<Signer>,
        config: ClusterClientConfig,
    ) -> ClusterClassProvider {
        let addrs: HashMap<u32, SocketAddr> = addrs
            .into_iter()
            .enumerate()
            .map(|(i, a)| (i as u32, a))
            .collect();
        let telemetry = Arc::new(Telemetry::new(&format!("cluster:{}", hello.user)));
        let metrics = ClusterMetrics::register(telemetry.registry());
        let mut health = HealthTracker::new(config.health);
        health.attach_metrics(telemetry.registry());
        health.attach_journal(telemetry.clone());
        ClusterClassProvider {
            addrs,
            ring,
            hello,
            signer,
            config,
            providers: HashMap::new(),
            health,
            stats: ClusterClientStats::default(),
            hook: Arc::new(Mutex::new(None)),
            telemetry,
            metrics,
        }
    }

    /// This client's telemetry plane. Per-shard connections share it, so
    /// `net.client.*` counters and breaker transitions for the whole
    /// cluster accumulate under one node.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        self.telemetry.clone()
    }

    /// Shares an externally owned telemetry plane (e.g. the DVM client's
    /// own node). Re-registers every handle, so call before fetching.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.metrics = ClusterMetrics::register(telemetry.registry());
        self.health.attach_metrics(telemetry.registry());
        self.health.attach_journal(telemetry.clone());
        for p in self.providers.values_mut() {
            p.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// Installs an observer called once per successful transfer,
    /// whichever shard served it.
    pub fn set_transfer_hook(&mut self, hook: TransferHook) {
        *self.hook.lock() = Some(hook);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ClusterClientStats {
        self.stats
    }

    /// Aggregated per-shard connection counters (zeros for shards this
    /// client never contacted).
    pub fn net_stats(&self) -> NetClientStats {
        let mut total = NetClientStats::default();
        for p in self.providers.values() {
            let s = p.stats();
            total.requests += s.requests;
            total.retries += s.retries;
            total.reconnects += s.reconnects;
            total.signature_failures += s.signature_failures;
            total.bytes_received += s.bytes_received;
        }
        total
    }

    /// The failover order the ring assigns to `url` (for tests and
    /// diagnostics).
    pub fn route(&self, url: &str) -> Vec<u32> {
        self.ring.route(url)
    }

    /// The epoch of the ring this client routes with.
    pub fn ring_epoch(&self) -> u64 {
        self.ring.epoch()
    }

    /// Pulls the cluster's published ring snapshot over a short-lived
    /// connection and, when it names a newer epoch, swaps in the new
    /// ring and address table without dropping still-valid shard
    /// connections. Returns `true` when a newer ring was installed.
    ///
    /// Every known shard is tried in id order until one answers; the
    /// membership plane guarantees any live shard serves the same
    /// published snapshot.
    pub fn sync_ring(&mut self) -> bool {
        let mut order: Vec<(u32, SocketAddr)> = self.addrs.iter().map(|(&s, &a)| (s, a)).collect();
        order.sort_by_key(|&(s, _)| s);
        let my_epoch = self.ring.epoch();
        for (_, addr) in order {
            let Some((epoch, ring_bytes)) = pull_ring(addr, &self.hello, self.config.net, my_epoch)
            else {
                continue;
            };
            if epoch <= my_epoch || ring_bytes.is_empty() {
                // This shard answered and we are already current.
                return false;
            }
            let Ok(snap) = RingSnapshot::decode(&ring_bytes) else {
                // A corrupt snapshot from one shard must not wedge the
                // client on it; try the next shard.
                continue;
            };
            self.install_snapshot(&snap);
            return true;
        }
        false
    }

    fn install_snapshot(&mut self, snap: &RingSnapshot) {
        self.ring = snap.to_ring();
        let mut fresh: HashMap<u32, SocketAddr> = HashMap::new();
        for (shard, addr) in &snap.addrs {
            if let Ok(parsed) = addr.parse::<SocketAddr>() {
                fresh.insert(*shard, parsed);
            }
        }
        // Drop connections whose shard left or moved; keep the rest —
        // an epoch change must not cost every client a reconnect storm.
        self.providers
            .retain(|shard, _| fresh.get(shard) == self.addrs.get(shard));
        self.addrs = fresh;
        self.stats.ring_syncs += 1;
        self.metrics.ring_syncs.inc();
    }

    fn provider(&mut self, shard: u32) -> Result<&mut NetClassProvider, NetError> {
        if !self.providers.contains_key(&shard) {
            let Some(&addr) = self.addrs.get(&shard) else {
                return Err(NetError::Protocol(format!("no address for shard {shard}")));
            };
            // Decorrelate each shard connection's backoff jitter while
            // keeping the whole client replayable from one seed.
            let mut net = self.config.net;
            net.jitter_seed ^= (shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut p = NetClassProvider::new(addr, self.hello.clone(), self.signer.clone(), net)?;
            let hook = self.hook.clone();
            p.set_transfer_hook(Box::new(move |t| {
                if let Some(h) = hook.lock().as_mut() {
                    h(t);
                }
            }));
            p.set_telemetry(self.telemetry.clone());
            self.providers.insert(shard, p);
        }
        Ok(self.providers.get_mut(&shard).expect("installed above"))
    }

    fn attempt(
        &mut self,
        shard: u32,
        url: &str,
        trace: TraceContext,
    ) -> Result<(Vec<u8>, NetTransfer), NetError> {
        let start = self.telemetry.recorder().now_ns();
        let outcome = match self.provider(shard) {
            Ok(p) => p.fetch_attempt_traced(url, Some(trace)),
            Err(e) => Err(e),
        };
        match &outcome {
            Ok(_) => self.health.record_success(shard),
            Err(e) if e.is_retryable() => self.health.record_failure(shard),
            // Non-retryable answers (NotFound, Filter, BadSignature)
            // prove the shard is *healthy* — it answered.
            Err(_) => self.health.record_success(shard),
        }
        let end = self.telemetry.recorder().now_ns();
        self.telemetry.recorder().record_span(
            trace.trace,
            SpanId::generate(),
            trace.parent,
            &format!("cluster.attempt.shard{shard}"),
            start,
            end.saturating_sub(start),
        );
        outcome
    }

    /// Fetches `url`, failing over across shards and rounds. The fetch
    /// roots a new trace; every shard attempt (and the serving shard's
    /// whole pipeline) records spans under it.
    pub fn fetch(&mut self, url: &str) -> Result<(Vec<u8>, NetTransfer), ClusterError> {
        self.stats.requests += 1;
        self.metrics.requests.inc();
        let trace = TraceId::generate();
        let root = SpanId::generate();
        let start = self.telemetry.recorder().now_ns();
        let result = self.fetch_traced(
            url,
            TraceContext {
                trace,
                parent: root,
            },
        );
        let end = self.telemetry.recorder().now_ns();
        self.metrics.fetch_ns.record(end.saturating_sub(start));
        self.telemetry.recorder().record_span(
            trace,
            root,
            SpanId::NONE,
            "cluster.fetch",
            start,
            end.saturating_sub(start),
        );
        result
    }

    fn fetch_traced(
        &mut self,
        url: &str,
        ctx: TraceContext,
    ) -> Result<(Vec<u8>, NetTransfer), ClusterError> {
        let mut order = self.ring.route(url);
        if order.is_empty() {
            return Err(ClusterError::NoShards);
        }
        let mut last: Option<NetError> = None;
        for round in 0..self.config.rounds.max(1) {
            if round > 0 {
                std::thread::sleep(self.config.round_backoff);
            }
            let mut attempted = 0u32;
            for (i, &shard) in order.iter().enumerate() {
                if !self.health.allow(shard) {
                    self.stats.quarantine_skips += 1;
                    self.metrics.quarantine_skips.inc();
                    continue;
                }
                attempted += 1;
                match self.attempt(shard, url, ctx) {
                    Ok(ok) => {
                        if i > 0 {
                            self.stats.non_home_serves += 1;
                            self.metrics.non_home_serves.inc();
                        }
                        return Ok(ok);
                    }
                    Err(e) if e.is_retryable() => {
                        self.stats.failovers += 1;
                        self.metrics.failovers.inc();
                        last = Some(e);
                    }
                    Err(e) => return Err(ClusterError::Fatal(e)),
                }
            }
            if attempted == 0 {
                // Every circuit is open. Refusing to try anything would
                // turn a transient full-cluster brownout into a
                // permanent client failure, so force one probe of the
                // home shard; its outcome re-arms or closes the breaker.
                self.stats.desperation_probes += 1;
                self.metrics.desperation_probes.inc();
                let home = order[0];
                self.health.force_probe(home);
                match self.attempt(home, url, ctx) {
                    Ok(ok) => return Ok(ok),
                    Err(e) if e.is_retryable() => {
                        self.stats.failovers += 1;
                        self.metrics.failovers.inc();
                        last = Some(e);
                    }
                    Err(e) => return Err(ClusterError::Fatal(e)),
                }
            }
            // A whole round failed: membership may have moved under us
            // (shard retired, restarted at a new address). Relearn the
            // ring before burning another round on stale routes.
            if self.config.ring_sync && self.sync_ring() {
                order = self.ring.route(url);
                if order.is_empty() {
                    return Err(ClusterError::NoShards);
                }
            }
        }
        Err(ClusterError::Exhausted(Box::new(last.unwrap_or(
            NetError::Protocol("no shard could be attempted".into()),
        ))))
    }

    /// Closes every per-shard connection (re-established lazily).
    pub fn close(&mut self) {
        for p in self.providers.values_mut() {
            p.close();
        }
    }
}

/// One `RING_UPDATE` exchange over a throwaway connection: Hello,
/// Welcome, ask with our epoch, read the answer. `None` on any
/// transport or protocol trouble — the caller tries the next shard.
fn pull_ring(
    addr: SocketAddr,
    hello: &Hello,
    net: NetConfig,
    my_epoch: u64,
) -> Option<(u64, Vec<u8>)> {
    let mut stream = TcpStream::connect_timeout(&addr, net.connect_timeout).ok()?;
    stream.set_read_timeout(Some(net.read_timeout)).ok()?;
    stream.set_write_timeout(Some(net.write_timeout)).ok()?;
    let _ = stream.set_nodelay(true);
    Frame::Hello(hello.clone()).write_to(&mut stream).ok()?;
    match Frame::read_from(&mut stream) {
        Ok(Frame::Welcome { .. }) => {}
        _ => return None,
    }
    Frame::RingUpdate {
        epoch: my_epoch,
        ring: Vec::new(),
    }
    .write_to(&mut stream)
    .ok()?;
    let answer = match Frame::read_from(&mut stream) {
        Ok(Frame::RingUpdate { epoch, ring }) => Some((epoch, ring)),
        _ => None,
    };
    let _ = Frame::Bye.write_to(&mut stream);
    answer
}

impl ClassProvider for ClusterClassProvider {
    fn load(&mut self, name: &str) -> Option<Vec<u8>> {
        let url = format!("class://{name}");
        self.fetch(&url).ok().map(|(bytes, _)| bytes)
    }
}
