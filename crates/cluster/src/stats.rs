//! Fleet-wide stats collection over the wire.
//!
//! [`collect_fleet_stats_live`] is the pull side of the stats plane: it
//! walks the cluster's *live membership* (shard id → address pairs),
//! asks each live server for its `STATS_RESPONSE`, and merges the
//! per-shard metrics into one fleet-wide snapshot. Unreachable shards
//! are reported as such rather than failing the whole collection — an
//! operator asking "how is the cluster doing" most needs an answer when
//! part of it is down.
//!
//! Walking live membership (rather than a boot-time address list)
//! matters under elastic scaling: shards that joined after boot appear
//! in the report, and retired shards stop being reported as eternally
//! unreachable ghosts.

use std::net::SocketAddr;

use dvm_net::{fetch_stats, Hello, NetConfig};
use dvm_telemetry::{MetricsSnapshot, StatsReport};

/// One shard's answer to a stats pull.
#[derive(Debug)]
pub struct ShardReport {
    /// The shard's ring id.
    pub shard: u32,
    /// The shard's address, as given to the collector.
    pub addr: SocketAddr,
    /// Its report, when the pull succeeded.
    pub report: Option<StatsReport>,
    /// The failure rendered for display, when it did not.
    pub error: Option<String>,
}

impl ShardReport {
    /// True when this shard answered the pull.
    pub fn reachable(&self) -> bool {
        self.report.is_some()
    }
}

/// Every shard's report plus the fleet-wide merge.
#[derive(Debug)]
pub struct FleetStats {
    /// Per-shard outcomes, indexed like the input address list.
    pub shards: Vec<ShardReport>,
    /// All reachable shards' metrics merged into one snapshot.
    pub merged: MetricsSnapshot,
}

impl FleetStats {
    /// How many shards answered.
    pub fn reachable(&self) -> usize {
        self.shards.iter().filter(|s| s.reachable()).count()
    }
}

/// Pulls a [`StatsReport`] from every `(shard, addr)` pair (serially —
/// the collector is an operator tool, not a hot path) and merges the
/// reachable ones. `include_spans` asks each shard for its span window
/// too; leave it off for cheap periodic polling.
///
/// The pairs should come from the cluster's live membership (see
/// `ProxyCluster::live_addrs`), so the report tracks joins and retires
/// instead of the boot-time roster.
pub fn collect_fleet_stats_live(
    pairs: &[(u32, SocketAddr)],
    hello: &Hello,
    config: NetConfig,
    include_spans: bool,
) -> FleetStats {
    let mut shards = Vec::with_capacity(pairs.len());
    for &(shard, addr) in pairs {
        match fetch_stats(addr, hello.clone(), config, include_spans) {
            Ok(report) => shards.push(ShardReport {
                shard,
                addr,
                report: Some(report),
                error: None,
            }),
            Err(e) => shards.push(ShardReport {
                shard,
                addr,
                report: None,
                error: Some(e.to_string()),
            }),
        }
    }
    let merged = StatsReport::merge_metrics(shards.iter().filter_map(|s| s.report.as_ref()));
    FleetStats { shards, merged }
}

/// Address-list variant kept for callers without a membership view; the
/// list index doubles as the shard id.
pub fn collect_fleet_stats(
    addrs: &[SocketAddr],
    hello: &Hello,
    config: NetConfig,
    include_spans: bool,
) -> FleetStats {
    let pairs: Vec<(u32, SocketAddr)> = addrs
        .iter()
        .enumerate()
        .map(|(i, &addr)| (i as u32, addr))
        .collect();
    collect_fleet_stats_live(&pairs, hello, config, include_spans)
}
