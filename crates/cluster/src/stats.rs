//! Fleet-wide stats collection over the wire.
//!
//! [`collect_fleet_stats`] is the pull side of the stats plane: it walks
//! a shard address list, asks each live server for its
//! `STATS_RESPONSE`, and merges the per-shard metrics into one
//! fleet-wide snapshot. Unreachable shards are reported as such rather
//! than failing the whole collection — an operator asking "how is the
//! cluster doing" most needs an answer when part of it is down.

use std::net::SocketAddr;

use dvm_net::{fetch_stats, Hello, NetConfig};
use dvm_telemetry::{MetricsSnapshot, StatsReport};

/// One shard's answer to a stats pull.
#[derive(Debug)]
pub struct ShardReport {
    /// The shard's address, as given to the collector.
    pub addr: SocketAddr,
    /// Its report, when the pull succeeded.
    pub report: Option<StatsReport>,
    /// The failure rendered for display, when it did not.
    pub error: Option<String>,
}

impl ShardReport {
    /// True when this shard answered the pull.
    pub fn reachable(&self) -> bool {
        self.report.is_some()
    }
}

/// Every shard's report plus the fleet-wide merge.
#[derive(Debug)]
pub struct FleetStats {
    /// Per-shard outcomes, indexed like the input address list.
    pub shards: Vec<ShardReport>,
    /// All reachable shards' metrics merged into one snapshot.
    pub merged: MetricsSnapshot,
}

impl FleetStats {
    /// How many shards answered.
    pub fn reachable(&self) -> usize {
        self.shards.iter().filter(|s| s.reachable()).count()
    }
}

/// Pulls a [`StatsReport`] from every address in `addrs` (serially — the
/// collector is an operator tool, not a hot path) and merges the
/// reachable ones. `include_spans` asks each shard for its span window
/// too; leave it off for cheap periodic polling.
pub fn collect_fleet_stats(
    addrs: &[SocketAddr],
    hello: &Hello,
    config: NetConfig,
    include_spans: bool,
) -> FleetStats {
    let mut shards = Vec::with_capacity(addrs.len());
    for &addr in addrs {
        match fetch_stats(addr, hello.clone(), config, include_spans) {
            Ok(report) => shards.push(ShardReport {
                addr,
                report: Some(report),
                error: None,
            }),
            Err(e) => shards.push(ShardReport {
                addr,
                report: None,
                error: Some(e.to_string()),
            }),
        }
    }
    let merged = StatsReport::merge_metrics(shards.iter().filter_map(|s| s.report.as_ref()));
    FleetStats { shards, merged }
}
