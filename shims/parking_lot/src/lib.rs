//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal lock API it actually uses, backed by `std::sync`.
//! Semantics match `parking_lot` where they matter here: `lock()` returns
//! the guard directly (a poisoned std mutex is recovered rather than
//! propagated, mirroring `parking_lot`'s absence of poisoning).

use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
