//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small surface it uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, which is exactly what the workload generator wants (the real
//! `StdRng` makes no cross-version stability promise anyway).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable generator interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution (`[0, 1)` for
    /// floats, the full domain for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (which must be non-empty).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Standard>::sample_standard(rng) * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Small-state generator; identical engine here.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: i32 = rng.gen_range(-10_000..10_000);
            assert!((-10_000..10_000).contains(&v));
            let u: f64 = rng.gen_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&u));
            let k = rng.gen_range(0..4);
            assert!((0..4).contains(&k));
            let inc: i16 = rng.gen_range(-128i16..=127);
            assert!((-128..=127).contains(&inc));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
