//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the benchmark-harness surface its benches use. Measurements
//! are real (median of wall-clock samples) but intentionally simple: no
//! statistical analysis, HTML reports, or baselines — run times print to
//! stdout and that is all. Good enough to keep `cargo bench` compiling
//! and giving ballpark numbers offline.

use std::time::{Duration, Instant};

/// Declared throughput, used to derive a rate alongside the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_count` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate the per-sample iteration count to ~2 ms.
        let start = Instant::now();
        std::hint::black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(50));
        let iters = (Duration::from_millis(2).as_nanos() / one.as_nanos()).clamp(1, 100_000) as u64;
        self.iters_per_sample = iters;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the work done per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
        };
        f(&mut b);
        report(&self.name, id, &b, self.throughput);
        self
    }

    /// Ends the group (report already printed incrementally).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mut per_iter: Vec<u128> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() / b.iters_per_sample as u128)
        .collect();
    per_iter.sort_unstable();
    let median = per_iter[per_iter.len() / 2];
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median > 0 => {
            format!(
                " ({:.1} MiB/s)",
                n as f64 * 1e9 / median as f64 / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if median > 0 => {
            format!(" ({:.0} elem/s)", n as f64 * 1e9 / median as f64)
        }
        _ => String::new(),
    };
    println!("{group}/{id}: median {}{rate}", fmt_ns(median));
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Prevents the optimizer from eliding a value (std passthrough).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
