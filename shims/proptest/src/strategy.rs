//! Core strategy trait, combinators, and primitive strategies.

use std::fmt::Debug;
use std::rc::Rc;

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as usize;
        }
        lo + (self.next_u64() % (span + 1)) as usize
    }
}

/// A generator of test values.
///
/// Unlike real proptest there is no shrinking: `generate` produces one
/// value and failing inputs are reported verbatim.
pub trait Strategy: 'static {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into a deeper value, to at most `depth`
    /// levels. (`_desired_size` and `_expected_branch` are accepted for
    /// API compatibility and unused.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current.clone()).boxed();
            current = Union::new(vec![base.clone(), deeper]).boxed();
        }
        current
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V: Debug + 'static> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Strategy mapping values through a function.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug + 'static>(pub T);

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (see [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug + 'static> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_in(0, self.arms.len() - 1);
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_range_strategies!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String patterns act as strategies generating matching strings, as in
/// real proptest (supported syntax documented in [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (-32768i32..=32767).generate(&mut rng);
            assert!((-32768..=32767).contains(&v));
            let u = (0u16..4).generate(&mut rng);
            assert!(u < 4);
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = TestRng::new(2);
        let u = Union::new(vec![Just(0u8).boxed(), Just(1u8).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>),
        }
        fn tree_depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(inner) => 1 + tree_depth(inner),
            }
        }
        let strat = Just(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| inner.prop_map(|t| Tree::Node(Box::new(t))));
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            assert!(tree_depth(&strat.generate(&mut rng)) <= 3);
        }
    }
}
