//! String generation from a regex subset.
//!
//! Supported syntax (the subset the workspace's patterns use):
//! - literal characters and escapes (`\\.`, `\\\\`, …)
//! - character classes `[a-zA-Z0-9/$_]` with ranges and literals
//! - groups `(...)` with alternation `|`
//! - quantifiers `{n}`, `{m,n}`, `{m,}`, `*`, `+`, `?`
//!   (unbounded repetition is capped at 8 extra repeats)
//! - `\d`, `\w`, `\s` shorthand classes, and `\PC` (any non-control
//!   character, approximated by printable ASCII plus a few code points
//!   outside ASCII)
//!
//! Unsupported syntax panics with a clear message — a pattern the shim
//! cannot generate is a bug in the test, not a case to silently skip.

use crate::strategy::TestRng;

const UNBOUNDED_EXTRA: u32 = 8;

#[derive(Debug, Clone)]
enum Atom {
    Lit(char),
    /// Inclusive character ranges to choose among.
    Class(Vec<(char, char)>),
    /// Alternative sequences.
    Group(Vec<Seq>),
}

type Seq = Vec<(Atom, u32, u32)>;

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let alts = Parser::new(pattern).parse_alternatives(true);
    let mut out = String::new();
    gen_alts(&alts, rng, &mut out);
    out
}

fn gen_alts(alts: &[Seq], rng: &mut TestRng, out: &mut String) {
    let seq = &alts[rng.usize_in(0, alts.len() - 1)];
    for (atom, lo, hi) in seq {
        let n = rng.usize_in(*lo as usize, *hi as usize);
        for _ in 0..n {
            match atom {
                Atom::Lit(c) => out.push(*c),
                Atom::Class(ranges) => out.push(pick_from_class(ranges, rng)),
                Atom::Group(inner) => gen_alts(inner, rng, out),
            }
        }
    }
}

fn pick_from_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    // Weight ranges by their width so classes are roughly uniform.
    let total: u64 = ranges
        .iter()
        .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
        .sum();
    let mut pick = rng.next_u64() % total;
    for (a, b) in ranges {
        let width = (*b as u64) - (*a as u64) + 1;
        if pick < width {
            return char::from_u32(*a as u32 + pick as u32).unwrap_or(*a);
        }
        pick -= width;
    }
    ranges[0].0
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    pattern: String,
}

impl Parser {
    fn new(pattern: &str) -> Parser {
        Parser {
            chars: pattern.chars().collect(),
            pos: 0,
            pattern: pattern.to_owned(),
        }
    }

    fn unsupported(&self, what: &str) -> ! {
        panic!("string strategy {:?}: unsupported {what}", self.pattern);
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        self.pos += c.is_some() as usize;
        c
    }

    fn parse_alternatives(&mut self, top: bool) -> Vec<Seq> {
        let mut alts = vec![self.parse_seq()];
        while self.peek() == Some('|') {
            self.next();
            alts.push(self.parse_seq());
        }
        if top && self.pos != self.chars.len() {
            self.unsupported("trailing syntax");
        }
        alts
    }

    fn parse_seq(&mut self) -> Seq {
        let mut seq = Seq::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            let (lo, hi) = self.parse_quantifier();
            seq.push((atom, lo, hi));
        }
        seq
    }

    fn parse_atom(&mut self) -> Atom {
        match self.next().expect("parse_atom at end") {
            '[' => self.parse_class(),
            '(' => {
                let alts = self.parse_alternatives(false);
                if self.next() != Some(')') {
                    self.unsupported("unterminated group");
                }
                Atom::Group(alts)
            }
            '\\' => self.parse_escape(),
            '.' => Atom::Class(vec![(' ', '~')]),
            c @ ('*' | '+' | '?' | '{' | '}' | ']') => {
                self.unsupported(&format!("bare metacharacter {c:?}"))
            }
            c => Atom::Lit(c),
        }
    }

    fn parse_escape(&mut self) -> Atom {
        match self.next() {
            Some('d') => Atom::Class(vec![('0', '9')]),
            Some('w') => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            Some('s') => Atom::Class(vec![(' ', ' '), ('\t', '\t')]),
            Some('n') => Atom::Lit('\n'),
            Some('t') => Atom::Lit('\t'),
            // \PC: any character not in Unicode category C (control/other).
            // Approximated by printable ASCII plus a couple of non-ASCII
            // ranges so multi-byte UTF-8 still occurs.
            Some('P') => match self.next() {
                Some('C') => Atom::Class(vec![(' ', '~'), ('¡', 'ÿ'), ('А', 'я')]),
                other => self.unsupported(&format!("escape \\P{other:?}")),
            },
            Some(c) if !c.is_alphanumeric() => Atom::Lit(c),
            other => self.unsupported(&format!("escape {other:?}")),
        }
    }

    fn parse_class(&mut self) -> Atom {
        let mut ranges = Vec::new();
        if self.peek() == Some('^') {
            self.unsupported("negated class");
        }
        loop {
            let c = match self.next() {
                None => self.unsupported("unterminated class"),
                Some(']') => break,
                Some('\\') => match self.next() {
                    Some(e) if !e.is_alphanumeric() => e,
                    Some('n') => '\n',
                    Some('t') => '\t',
                    other => self.unsupported(&format!("class escape {other:?}")),
                },
                Some(c) => c,
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.next(); // '-'
                let end = match self.next() {
                    Some('\\') => self
                        .next()
                        .unwrap_or_else(|| self.unsupported("class escape")),
                    Some(e) => e,
                    None => self.unsupported("unterminated class range"),
                };
                if end < c {
                    self.unsupported("inverted class range");
                }
                ranges.push((c, end));
            } else {
                ranges.push((c, c));
            }
        }
        if ranges.is_empty() {
            self.unsupported("empty class");
        }
        Atom::Class(ranges)
    }

    fn parse_quantifier(&mut self) -> (u32, u32) {
        match self.peek() {
            Some('*') => {
                self.next();
                (0, UNBOUNDED_EXTRA)
            }
            Some('+') => {
                self.next();
                (1, 1 + UNBOUNDED_EXTRA)
            }
            Some('?') => {
                self.next();
                (0, 1)
            }
            Some('{') => {
                self.next();
                let lo = self.parse_number();
                let hi = match self.next() {
                    Some('}') => lo,
                    Some(',') => match self.peek() {
                        Some('}') => lo + UNBOUNDED_EXTRA,
                        _ => self.parse_number(),
                    },
                    other => self.unsupported(&format!("quantifier token {other:?}")),
                };
                if self.peek() == Some('}') {
                    self.next();
                } else if hi != lo && self.chars.get(self.pos - 1) != Some(&'}') {
                    self.unsupported("unterminated quantifier");
                }
                if hi < lo {
                    self.unsupported("inverted quantifier");
                }
                (lo, hi)
            }
            _ => (1, 1),
        }
    }

    fn parse_number(&mut self) -> u32 {
        let mut n: u32 = 0;
        let mut any = false;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                n = n * 10 + d;
                any = true;
                self.next();
            } else {
                break;
            }
        }
        if !any {
            self.unsupported("quantifier without digits");
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        let mut rng = TestRng::new(seed);
        generate(pattern, &mut rng)
    }

    #[test]
    fn classes_and_counts() {
        for seed in 0..200 {
            let s = gen("[a-zA-Z0-9/$_]{1,40}", seed);
            assert!((1..=40).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "/$_".contains(c)));
        }
    }

    #[test]
    fn groups_with_quantifiers() {
        for seed in 0..200 {
            let s = gen("[a-z][a-z0-9]{0,10}(/[A-Z][a-zA-Z0-9]{0,10}){1,3}", seed);
            let segments: Vec<&str> = s.split('/').collect();
            assert!((2..=4).contains(&segments.len()), "{s:?}");
            assert!(segments[0].starts_with(|c: char| c.is_ascii_lowercase()));
            for seg in &segments[1..] {
                assert!(seg.starts_with(|c: char| c.is_ascii_uppercase()), "{s:?}");
            }
        }
    }

    #[test]
    fn escapes() {
        for seed in 0..50 {
            let s = gen("[a-z]{1,8}\\.[a-z]{1,8}", seed);
            assert_eq!(s.matches('.').count(), 1, "{s:?}");
            let p = gen("\\PC{0,300}", seed);
            assert!(p.chars().count() <= 300);
            assert!(p.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn exact_count_and_alternation() {
        for seed in 0..50 {
            assert_eq!(gen("[0-9]{3}", seed).len(), 3);
            let s = gen("(ab|cd)", seed);
            assert!(s == "ab" || s == "cd");
        }
    }
}
