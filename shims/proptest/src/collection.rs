//! Collection strategies: `vec`, `hash_set`, `btree_map`.

use std::collections::{BTreeMap, HashSet};
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::{Strategy, TestRng};

/// An inclusive size bound for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.lo, self.hi)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

/// Generates `Vec`s of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `HashSet`s of `element` values. The set may come out smaller
/// than the sampled size when duplicates collide, as in real proptest.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = HashSet::new();
        // Bounded attempts so low-entropy element strategies terminate.
        for _ in 0..target.saturating_mul(4).max(8) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

/// Generates `BTreeMap`s from key and value strategies. The map may come
/// out smaller than the sampled size when keys collide.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        for _ in 0..target.saturating_mul(4).max(8) {
            if map.len() >= target {
                break;
            }
            map.insert(self.key.generate(rng), self.value.generate(rng));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_respects_bounds() {
        let s = vec(any::<u8>(), 0..60);
        let mut rng = TestRng::new(4);
        for _ in 0..200 {
            assert!(s.generate(&mut rng).len() < 60);
        }
    }

    #[test]
    fn maps_and_sets_generate() {
        let mut rng = TestRng::new(5);
        let set = hash_set(0u32..10, 0..8).generate(&mut rng);
        assert!(set.len() < 8);
        let map = btree_map("[a-z]{1,8}", 1u32..1000, 1..5).generate(&mut rng);
        assert!(!map.is_empty() && map.len() < 5);
    }
}
