//! `any::<T>()` strategies over primitive types.

use std::marker::PhantomData;

use crate::strategy::{Strategy, TestRng};

/// Strategy over the full domain of `T` (see [`any`]).
pub struct Any<T>(PhantomData<fn() -> T>);

/// Returns a strategy generating arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! any_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// Floats come from raw bit patterns so NaNs, infinities, and subnormals
// all occur — matching real proptest's any::<f32/f64>() coverage intent.
impl Strategy for Any<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Strategy for Any<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32((rng.next_u64() % 0x11_0000) as u32) {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_cover_negatives() {
        let mut rng = TestRng::new(9);
        let mut saw_negative = false;
        for _ in 0..100 {
            if any::<i32>().generate(&mut rng) < 0 {
                saw_negative = true;
            }
        }
        assert!(saw_negative);
    }

    #[test]
    fn chars_are_valid() {
        let mut rng = TestRng::new(10);
        for _ in 0..1000 {
            let _ = any::<char>().generate(&mut rng);
        }
    }
}
