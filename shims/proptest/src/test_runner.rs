//! Test-case execution: config, error type, and the case loop.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::strategy::{Strategy, TestRng};

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Failure of a single test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The input was rejected (case is skipped, not failed).
    Reject(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Result of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

fn seed_for(name: &str) -> u64 {
    // FNV-1a: deterministic per test name, so failures reproduce.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Runs `config.cases` generated cases of `test` (used by [`proptest!`]).
///
/// Panics on the first failing case, reporting the generated input. There
/// is no shrinking; seeding is deterministic per test name.
///
/// [`proptest!`]: crate::proptest
pub fn run_cases<S, F>(config: ProptestConfig, strategy: &S, name: &str, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let mut rng = TestRng::new(seed_for(name));
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        let input = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "proptest {name}: case {case}/{} failed: {msg}\n  input: {input}",
                    config.cases
                )
            }
            Err(payload) => {
                eprintln!(
                    "proptest {name}: case {case}/{} panicked\n  input: {input}",
                    config.cases
                );
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn deterministic_inputs_per_name() {
        let s = crate::collection::vec(any::<u8>(), 0..10);
        let mut a = TestRng::new(seed_for("x"));
        let mut b = TestRng::new(seed_for("x"));
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic_with_input() {
        run_cases(
            ProptestConfig::with_cases(50),
            &(0u32..100),
            "always_small",
            |v| {
                prop_assert!(v < 5, "saw {v}");
                Ok(())
            },
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_end_to_end(mut v in crate::collection::vec(any::<u8>(), 0..20), x in 0u16..50) {
            v.push(x as u8);
            prop_assert!(!v.is_empty());
            prop_assert_eq!(*v.last().unwrap(), x as u8);
            prop_assert_ne!(v.len(), 0);
        }
    }
}
