//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the property-testing surface its tests use: the [`proptest!`]
//! macro, `prop_assert*` macros, [`prop_oneof!`], [`strategy::Strategy`]
//! combinators (`prop_map`, `prop_recursive`, `boxed`), range and tuple
//! strategies, regex-subset string strategies, and the [`collection`] /
//! [`option`] modules.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking — a failing case reports the exact generated input;
//! - no persistence — `.proptest-regressions` files are ignored;
//! - deterministic seeding per test name, so runs are reproducible.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a test module typically imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property, failing the case (not the
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format!($($fmt)*), file!(), line!()),
            ));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "prop_assert_eq! failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "prop_assert_ne! failed: both `{:?}`", left);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}

/// Chooses uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let strategy = ($($strategy,)+);
            $crate::test_runner::run_cases(
                $config,
                &strategy,
                stringify!($name),
                |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}
