//! Option strategies.

use crate::strategy::{Strategy, TestRng};

/// Generates `Some(value)` most of the time and `None` occasionally.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // 1 in 4 None, matching real proptest's default Some-bias spirit.
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn produces_both_variants() {
        let s = of(Just(1u8));
        let mut rng = TestRng::new(6);
        let (mut some, mut none) = (false, false);
        for _ in 0..100 {
            match s.generate(&mut rng) {
                Some(_) => some = true,
                None => none = true,
            }
        }
        assert!(some && none);
    }
}
