//! Umbrella crate for the DVM reproduction workspace.
//!
//! Re-exports the public API of every subsystem crate so that examples and
//! integration tests can use a single dependency. See `DESIGN.md` at the
//! repository root for the system inventory and experiment index.

pub use dvm_bytecode as bytecode;
pub use dvm_chaos as chaos;
pub use dvm_classfile as classfile;
pub use dvm_cluster as cluster;
pub use dvm_compiler as compiler;
pub use dvm_core as core;
pub use dvm_exec as exec;
pub use dvm_fuzz as fuzz;
pub use dvm_jvm as jvm;
pub use dvm_membership as membership;
pub use dvm_monitor as monitor;
pub use dvm_net as net;
pub use dvm_netsim as netsim;
pub use dvm_optimizer as optimizer;
pub use dvm_proxy as proxy;
pub use dvm_reactor as reactor;
pub use dvm_security as security;
pub use dvm_store as store;
pub use dvm_telemetry as telemetry;
pub use dvm_verifier as verifier;
pub use dvm_watch as watch;
pub use dvm_workload as workload;
