//! Sharded proxy cluster: one logical proxy, many shard servers.
//!
//! Stands up a three-shard `ProxyCluster`, runs a fleet of DVM clients
//! whose fetches are routed by the shared consistent-hash ring, then
//! kills a shard mid-demo and runs the fleet again — every client still
//! completes, failing over to the surviving replicas, while the shards
//! fill each other's caches over `PEER_GET`/`PEER_PUT`.
//!
//! ```sh
//! cargo run --release --example cluster_demo
//! ```

use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_security::Policy;
use dvm_workload::corpus;

fn main() {
    // A small signed corpus: a few real, verifiable applets.
    let mut applets = corpus(7);
    applets.truncate(4);
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    let org = Organization::new(
        &classes,
        Policy::parse(dvm_security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap();

    let mut cluster = org.serve_cluster(3).unwrap();
    println!("cluster of {} shards:", cluster.len());
    for (i, addr) in cluster.addrs().iter().enumerate() {
        println!("  shard {i} on {addr}");
    }
    for a in &applets {
        let url = format!("class://{}", a.main_class);
        println!(
            "  {:28} -> home shard {} (failover order {:?})",
            a.main_class,
            cluster.ring().home(&url).unwrap(),
            cluster.ring().route(&url)
        );
    }

    let run_fleet = |label: &str, cluster: &dvm_cluster::ProxyCluster| {
        println!("\n-- {label} --");
        std::thread::scope(|scope| {
            for (i, a) in applets.iter().enumerate() {
                let org = &org;
                scope.spawn(move || {
                    let user = format!("user{i}");
                    let mut client = org.cluster_client(cluster, &user, "applets").unwrap();
                    let report = client.run_main(&a.main_class).unwrap();
                    println!(
                        "{user:6} ran {:28} {:?} ({} classes over the wire)",
                        a.main_class,
                        report.completion,
                        report.transfers.len()
                    );
                });
            }
        });
    };

    run_fleet("full cluster", &cluster);

    let dead = cluster.kill_shard(1).unwrap();
    println!(
        "\nkilled shard 1 (it had served {} requests; {} peer gets)",
        dead.requests, dead.peer_gets
    );

    run_fleet(
        "degraded cluster: clients fail over to surviving shards",
        &cluster,
    );

    println!("\n-- shard stats --");
    let stats = cluster.shutdown();
    for (i, s) in stats.iter().enumerate() {
        match s {
            Some(s) => println!(
                "shard {i}: {} conns, {} requests, {} overload rejects, peer {}:{} get:hit, {} puts",
                s.connections, s.requests, s.overload_rejects, s.peer_gets, s.peer_hits, s.peer_puts
            ),
            None => println!("shard {i}: killed mid-demo"),
        }
    }
}
