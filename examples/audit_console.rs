//! Remote monitoring: network-wide resource accounting from the
//! administration console (§3.3 of the paper).
//!
//! Several clients (different users, different "hardware") run the same
//! application; every method entry/exit is forwarded to the central
//! console over each client's handshake-established session. The
//! administrator then inspects usage across the whole network and builds
//! the dynamic call graph — without touching any client.
//!
//! ```sh
//! cargo run --release --example audit_console
//! ```

use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_monitor::CallGraph;
use dvm_security::Policy;
use dvm_workload::{figure5_apps, generate};

fn main() {
    let spec = figure5_apps().remove(4).scaled(1, 20000); // cassowary, small
    let app = generate(&spec);
    let org = Organization::new(
        &app.classes,
        Policy::parse(dvm_security::policy::example_policy()).unwrap(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .unwrap();

    // Three users run the application.
    for user in ["alice", "bob", "carol"] {
        let mut client = org.client(user, "applets").unwrap();
        client.run_main(&app.main_class).unwrap();
    }

    let console = org.console.lock();
    println!("== administration console ==");
    println!("sessions     : {}", console.session_count());
    println!(
        "audit events : {} (retained {})",
        console.total_events(),
        console.retained_len()
    );
    println!("client formats: {:?}", console.native_formats());

    // Network-wide usage by site: the top-5 hottest methods.
    let sites = org.sites.lock();
    let mut usage: Vec<_> = console
        .usage_by_site()
        .iter()
        .map(|(s, n)| (*s, *n))
        .collect();
    usage.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("\ntop methods across the network:");
    for (site, count) in usage.iter().take(5) {
        let (class, method) = sites.resolve(*site).unwrap_or(("?", "?"));
        println!("  {count:>8}  {class}.{method}");
    }

    // Dynamic call graph (gprof-style) replayed from one session's events.
    let session = console.log().next().map(|r| r.session).unwrap();
    let mut graph = CallGraph::new();
    for record in console.events_for(session) {
        graph.feed(record.site, record.kind);
    }
    println!("\ncall-graph sample (session {:?}):", session);
    let main_site = sites
        .iter()
        .find(|(_, c, m)| c.ends_with("Main") && *m == "main")
        .map(|(id, _, _)| id)
        .unwrap();
    for (callee, count) in graph.callees_of(main_site) {
        let (class, method) = sites.resolve(callee).unwrap_or(("?", "?"));
        println!("  main -> {class}.{method} ({count} calls)");
    }
}
