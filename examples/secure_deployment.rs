//! Secure deployment: organization-wide policy enforcement with central
//! revocation (§3.2 of the paper).
//!
//! An untrusted application reads files under `/data/`. The organization
//! policy allows it — until the administrator revokes `file.open` at the
//! *security server*, after which every client in the organization denies
//! the access without any client-side reconfiguration (the
//! cache-invalidation protocol clears the enforcement managers).
//!
//! ```sh
//! cargo run --release --example secure_deployment
//! ```

use dvm_bytecode::Asm;
use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, ClassFile, MemberInfo};
use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_jvm::Completion;
use dvm_security::Policy;

/// An app that opens `/data/report.txt` and reads a byte.
fn file_reader() -> ClassFile {
    let mut cf = ClassBuilder::new("app/Reader").build();
    let fis = cf.pool.class("java/io/FileInputStream").unwrap();
    let init = cf
        .pool
        .methodref("java/io/FileInputStream", "<init>", "(Ljava/lang/String;)V")
        .unwrap();
    let read = cf
        .pool
        .methodref("java/io/FileInputStream", "read", "()I")
        .unwrap();
    let out = cf
        .pool
        .fieldref("java/lang/System", "out", "Ljava/io/PrintStream;")
        .unwrap();
    let println = cf
        .pool
        .methodref("java/io/PrintStream", "println", "(I)V")
        .unwrap();
    let path = cf.pool.string("/data/report.txt").unwrap();

    let mut a = Asm::new(1);
    a.new_object(fis)
        .dup()
        .ldc(path)
        .invokespecial(init)
        .astore(0);
    a.getstatic(out)
        .aload(0)
        .invokevirtual(read)
        .invokevirtual(println);
    a.ret();
    let code = a.finish().unwrap().encode(&cf.pool).unwrap();
    let name = cf.pool.utf8("main").unwrap();
    let desc = cf.pool.utf8("()V").unwrap();
    cf.methods.push(MemberInfo {
        access: AccessFlags::PUBLIC | AccessFlags::STATIC,
        name_index: name,
        descriptor_index: desc,
        attributes: vec![Attribute::Code(code)],
    });
    cf
}

fn main() {
    let org = Organization::new(
        &[file_reader()],
        Policy::parse(dvm_security::policy::example_policy()).unwrap(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .unwrap();
    let policy = org.policy();
    let (sid, open_perm) = {
        let p = policy.lock();
        (p.principals["applets"], p.permissions["file.open"])
    };

    // Phase 1: the policy permits file access.
    println!("== phase 1: policy allows file.open for 'applets' ==");
    let mut alice = org.client("alice", "applets").unwrap();
    alice.vm.add_file("/data/report.txt", vec![42, 43, 44]);
    let r = alice.run_main("app/Reader").unwrap();
    match &r.completion {
        Completion::Normal(_) => {
            println!("alice read the file; output = {:?}", alice.vm.stdout);
            println!("access checks executed: {}", r.security_checks);
        }
        Completion::Exception(_) => println!("unexpected denial: {:?}", r.exception),
    }

    // Phase 2: the administrator revokes the permission once, centrally.
    println!("\n== phase 2: administrator revokes file.open at the security server ==");
    org.security.lock().revoke(sid, open_perm);
    println!(
        "cache invalidations pushed to clients: {}",
        org.security.lock().stats.invalidations_sent
    );

    // Phase 3: the same (already rewritten, already cached) code is now
    // denied on every client.
    let mut bob = org.client("bob", "applets").unwrap();
    bob.vm.add_file("/data/report.txt", vec![42]);
    let r = bob.run_main("app/Reader").unwrap();
    match &r.completion {
        Completion::Exception(_) => {
            let (class, msg) = r.exception.clone().unwrap();
            println!("bob was denied: {class}: {msg}");
        }
        Completion::Normal(_) => println!("ERROR: revocation did not take effect!"),
    }

    // The audit trail on the console shows both sessions' activity.
    let console = org.console.lock();
    println!(
        "\naudit log: {} events across {} sessions",
        console.total_events(),
        console.session_count()
    );
}
