//! Quickstart: build a hello-world class, stand up a DVM organization,
//! and run the program on a client whose code flows through the
//! centralized service pipeline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dvm_bytecode::Asm;
use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, ClassFile, MemberInfo};
use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_security::Policy;

/// Assembles the classic example from the paper's Figure 3: a class whose
/// `main` prints "hello world" through `System.out`.
fn hello_world() -> ClassFile {
    let mut cf = ClassBuilder::new("hello/Hello").build();
    let out = cf
        .pool
        .fieldref("java/lang/System", "out", "Ljava/io/PrintStream;")
        .unwrap();
    let println = cf
        .pool
        .methodref("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
        .unwrap();
    let msg = cf.pool.string("hello world").unwrap();

    let mut a = Asm::new(0);
    a.getstatic(out).ldc(msg).invokevirtual(println).ret();
    let code = a.finish().unwrap().encode(&cf.pool).unwrap();

    let name = cf.pool.utf8("main").unwrap();
    let desc = cf.pool.utf8("()V").unwrap();
    cf.methods.push(MemberInfo {
        access: AccessFlags::PUBLIC | AccessFlags::STATIC,
        name_index: name,
        descriptor_index: desc,
        attributes: vec![Attribute::Code(code)],
    });
    cf
}

fn main() {
    // 1. The organization: a proxy hosting the static services
    //    (verification, security, auditing), a security server, and an
    //    administration console.
    let org = Organization::new(
        &[hello_world()],
        Policy::parse(dvm_security::policy::example_policy()).unwrap(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .unwrap();

    // 2. A client. Its handshake with the console established a session;
    //    every class it loads is fetched through the proxy and rewritten
    //    by the service pipeline.
    let mut client = org.client("alice", "applets").unwrap();
    let report = client.run_main("hello/Hello").unwrap();

    println!("program output : {:?}", client.vm.stdout);
    println!("completion     : {:?}", report.completion);
    println!();
    println!("-- timing (simulated, 200 MHz client / 10 Mb/s LAN) --");
    println!("execution      : {}", report.exec_time);
    println!("network        : {}", report.network_time);
    println!("proxy rewrite  : {}", report.proxy_time);
    println!("total          : {}", report.total_time);
    println!();
    println!("-- what the services did --");
    let stats = *org.service_stats.lock();
    println!("static verifier checks  : {}", stats.static_checks);
    println!(
        "runtime checks injected : {}",
        stats.dynamic_checks_injected
    );
    println!("audit probes inserted   : {}", stats.audit_probes);
    println!(
        "audit events recorded   : {}",
        org.console.lock().total_events()
    );
    println!(
        "classes transferred     : {:?}",
        report
            .transfers
            .iter()
            .map(|t| t.class.as_str())
            .collect::<Vec<_>>()
    );
}
