//! Fleet health console: the stats and watch planes end to end.
//!
//! Stands up a three-shard `ProxyCluster` with per-shard watches,
//! drives a fleet of DVM clients through it, then plays operator:
//! pulls every shard's `STATS_RESPONSE` over the wire, renders a fleet
//! health table (per-shard requests, cache tiers, wire traffic,
//! latency quantiles), prints one distributed trace as a span tree,
//! runs a few top-style live refreshes off the time-series plane
//! (windowed rates, p99, SLO burn, alert state), kills a shard, pulls
//! again to show the collector marking it unreachable while the merged
//! view keeps answering, and finally tails the survivors' event
//! journals — operator annotations included — over `EVENTS_REQUEST`.
//!
//! ```sh
//! cargo run --release --example stats_console
//! ```

use std::time::Duration;

use dvm_cluster::{collect_fleet_stats, ClusterOptions, FleetStats};
use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_net::{fetch_events, Hello, NetConfig};
use dvm_security::Policy;
use dvm_telemetry::{JournalKind, Span, SpanId};
use dvm_watch::{http_get, Objective, WatchConfig};
use dvm_workload::corpus;

const SEC: u64 = 1_000_000_000;

fn hello(user: &str) -> Hello {
    Hello {
        user: user.to_owned(),
        principal: "applets".to_owned(),
        hardware: "x86/200MHz/64MB".to_owned(),
        native_format: "x86".to_owned(),
        jvm_version: "dvm-repro-0.1".to_owned(),
    }
}

/// One histogram quantile rendered in microseconds.
fn quantile_us(report: &dvm_telemetry::StatsReport, name: &str, q: f64) -> String {
    match report.metrics.histograms.get(name) {
        Some(h) if h.count > 0 => format!("{:.0}", h.quantile(q) as f64 / 1_000.0),
        _ => "-".into(),
    }
}

fn counter(report: &dvm_telemetry::StatsReport, name: &str) -> u64 {
    report.metrics.counters.get(name).copied().unwrap_or(0)
}

fn health_table(fleet: &FleetStats) {
    println!(
        "{:<8} {:<11} {:>8} {:>7} {:>7} {:>9} {:>10} {:>9} {:>9}",
        "shard",
        "status",
        "requests",
        "mem-hit",
        "rewrite",
        "frames-in",
        "frames-out",
        "p50(us)",
        "p99(us)"
    );
    println!("{}", "-".repeat(88));
    for (i, shard) in fleet.shards.iter().enumerate() {
        match &shard.report {
            Some(r) => println!(
                "{:<8} {:<11} {:>8} {:>7} {:>7} {:>9} {:>10} {:>9} {:>9}",
                format!("{} ({})", i, r.node),
                "up",
                counter(r, "proxy.requests"),
                counter(r, "proxy.cache.hit.memory"),
                counter(r, "proxy.rewrites"),
                counter(r, "net.server.frames_in"),
                counter(r, "net.server.frames_out"),
                quantile_us(r, "net.server.serve_ns", 0.5),
                quantile_us(r, "net.server.serve_ns", 0.99),
            ),
            None => println!(
                "{:<8} {:<11} {}",
                i,
                "UNREACHABLE",
                shard.error.as_deref().unwrap_or("?")
            ),
        }
    }
    println!(
        "fleet:   {} shards up; merged: {} requests, {} rewrites, {} cache hits (mem+disk)\n",
        fleet.reachable(),
        fleet.merged.counters.get("proxy.requests").unwrap_or(&0),
        fleet.merged.counters.get("proxy.rewrites").unwrap_or(&0),
        fleet
            .merged
            .counters
            .get("proxy.cache.hit.memory")
            .unwrap_or(&0)
            + fleet
                .merged
                .counters
                .get("proxy.cache.hit.disk")
                .unwrap_or(&0),
    );
}

/// Prints `span` and its descendants as an indented tree.
fn print_tree(spans: &[Span], parent: SpanId, depth: usize) {
    let mut children: Vec<&Span> = spans.iter().filter(|s| s.parent == parent).collect();
    children.sort_by_key(|s| s.start_ns);
    for s in children {
        println!(
            "{:indent$}{:<28} [{}] {:.1}us",
            "",
            s.name,
            s.node,
            s.duration_ns as f64 / 1_000.0,
            indent = depth * 2
        );
        print_tree(spans, s.id, depth + 1);
    }
}

fn main() {
    let mut applets = corpus(7);
    applets.truncate(4);
    let classes: Vec<_> = applets
        .iter()
        .flat_map(|a| a.classes.iter().cloned())
        .collect();
    let mut services = ServiceConfig::dvm();
    services.signing = true;
    let org = Organization::new(
        &classes,
        Policy::parse(dvm_security::policy::example_policy()).unwrap(),
        services,
        CostModel::default(),
    )
    .unwrap();

    // Per-shard watches: a 100 ms sampler, one latency SLO (serve p99
    // under 2 ms — tight enough that the cold-start rewrite burst
    // visibly fires the alert in the live view), and an HTTP /metrics
    // listener per shard.
    let mut cluster = org
        .serve_cluster_with(
            3,
            ClusterOptions {
                watch: Some(WatchConfig {
                    interval_ns: 100_000_000,
                    objectives: vec![Objective::latency_p99(
                        "serve-p99",
                        "net.server.serve_ns",
                        2_000_000,
                        2 * SEC,
                        6 * SEC,
                    )],
                    ..WatchConfig::default()
                }),
                metrics_http: true,
                ..ClusterOptions::default()
            },
        )
        .unwrap();
    println!("cluster of {} shards up\n", cluster.len());

    // Drive a fleet through the cluster; keep one client's telemetry so
    // the console can show a trace rooted at the client.
    let mut clients: Vec<_> = (0..4)
        .map(|i| {
            org.cluster_client(&cluster, &format!("user{i}"), "applets")
                .unwrap()
        })
        .collect();
    for (i, client) in clients.iter_mut().enumerate() {
        client
            .run_main(&applets[i % applets.len()].main_class)
            .unwrap();
    }

    println!("-- fleet health (pulled over STATS_REQUEST) --");
    let fleet = collect_fleet_stats(
        cluster.addrs(),
        &hello("operator"),
        NetConfig::default(),
        true,
    );
    health_table(&fleet);

    // One distributed trace: the client's root span plus whatever the
    // shards recorded under the same trace id.
    let client_telemetry = clients[0].telemetry();
    let client_spans = client_telemetry.recorder().dump();
    if let Some(root) = client_spans.iter().find(|s| s.name == "cluster.fetch") {
        let mut spans: Vec<Span> = client_spans
            .iter()
            .filter(|s| s.trace == root.trace)
            .cloned()
            .collect();
        for shard in &fleet.shards {
            if let Some(r) = &shard.report {
                spans.extend(r.spans.iter().filter(|s| s.trace == root.trace).cloned());
            }
        }
        println!("-- one trace ({} spans) --", spans.len());
        print_tree(&spans, SpanId::NONE, 0);
        println!();
    }

    // The live view: three top-style refreshes off the time-series
    // plane — windowed rates and quantiles from each shard's sampler,
    // SLO burn and alert state from its objective — while traffic runs.
    println!("-- live watch (3 refreshes, 2s window) --");
    for frame in 0..3 {
        for (i, client) in clients.iter_mut().enumerate() {
            client
                .run_main(&applets[(frame + i) % applets.len()].main_class)
                .unwrap();
        }
        std::thread::sleep(Duration::from_millis(250));
        println!(
            "{:<8} {:>8} {:>9} {:>10} {:>10} {:>9}",
            "shard", "req/s", "p99(us)", "burn-fast", "burn-slow", "alert"
        );
        for i in 0..cluster.len() {
            let Some(watch) = cluster.watch(i) else {
                continue;
            };
            let alert = &watch.alerts()[0];
            println!(
                "{:<8} {:>8.1} {:>9.0} {:>10.2} {:>10.2} {:>9}",
                i,
                watch.rate("proxy.requests", 2 * SEC),
                watch.quantile("net.server.serve_ns", 0.99, 2 * SEC) as f64 / 1_000.0,
                alert.fast_burn,
                alert.slow_burn,
                alert.state.label(),
            );
        }
        println!();
    }

    // The same plane, as an external scraper sees it.
    if let Some(addr) = cluster.metrics_addr(0) {
        let body = http_get(addr, "/metrics").unwrap();
        println!("-- GET http://{addr}/metrics (first lines) --");
        for line in body.lines().take(8) {
            println!("{line}");
        }
        println!("...\n");
    }

    // Operator's bad day: a shard dies. Fresh clients (cold VM class
    // caches, so they really fetch) fail over to the survivors; the
    // collector says which shard is gone. The annotation goes into the
    // survivors' journals so the tail below shows when and why.
    for i in [0, 2] {
        if let Some(t) = cluster.shard_telemetry(i) {
            t.record_event(JournalKind::Note {
                text: "operator: killing shard 1 for the demo".into(),
            });
        }
    }
    cluster.kill_shard(1).unwrap();
    for (i, a) in applets.iter().enumerate() {
        let mut late = org
            .cluster_client(&cluster, &format!("late{i}"), "applets")
            .unwrap();
        late.run_main(&a.main_class).unwrap();
        clients.push(late);
    }
    println!("-- after killing shard 1 --");
    let fleet = collect_fleet_stats(
        cluster.addrs(),
        &hello("operator"),
        NetConfig {
            connect_timeout: std::time::Duration::from_millis(300),
            ..NetConfig::default()
        },
        false,
    );
    health_table(&fleet);

    // The client-side breaker state is part of the same plane.
    let report = clients.last().unwrap().telemetry().report();
    println!(
        "late client: {} fetches, {} failovers, breaker opened {} time(s), {} circuit(s) open now",
        counter(&report, "cluster.requests"),
        counter(&report, "cluster.failovers"),
        counter(&report, "cluster.breaker.opened"),
        report
            .metrics
            .gauges
            .get("cluster.breaker.open_now")
            .copied()
            .unwrap_or(0),
    );

    // Tail the survivors' structured event journals over the wire: the
    // operator annotation plus whatever the watch plane recorded.
    println!("\n-- journal tail (EVENTS_REQUEST, cursor 0) --");
    for i in [0usize, 2] {
        let (events, next) = fetch_events(
            cluster.addrs()[i],
            hello("operator"),
            NetConfig::default(),
            0,
            32,
        )
        .unwrap();
        for e in &events {
            println!(
                "shard {i}  seq {:>3}  {:>9.3}s  {:<13} {:?}",
                e.seq,
                e.at_ns as f64 / 1e9,
                e.kind.label(),
                e.kind,
            );
        }
        println!("shard {i}: {} event(s), cursor now {next}", events.len());
    }
    cluster.shutdown();
}
