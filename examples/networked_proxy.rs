//! Networked proxy: the organization's trust boundary on a real socket.
//!
//! Stands up the same organization as `quickstart`, but puts the proxy
//! and the administration console behind a TCP server, then runs four
//! concurrent DVM clients whose classes arrive over the wire — fetched
//! with `CODE_REQUEST`/`CODE_RESPONSE` frames, signature-verified on
//! receipt, with audit events streamed back as `AUDIT_EVENT` frames.
//!
//! The sockets move the bytes; `dvm-netsim` still prices them, so the
//! reported timings stay machine-independent.
//!
//! ```sh
//! cargo run --release --example networked_proxy
//! ```

use dvm_bytecode::Asm;
use dvm_classfile::{AccessFlags, Attribute, ClassBuilder, ClassFile, MemberInfo};
use dvm_core::{CostModel, Organization, ServiceConfig};
use dvm_proxy::ServedFrom;
use dvm_security::Policy;

/// The paper's Figure 3 hello-world, assembled from scratch.
fn hello_world() -> ClassFile {
    let mut cf = ClassBuilder::new("hello/Hello").build();
    let out = cf
        .pool
        .fieldref("java/lang/System", "out", "Ljava/io/PrintStream;")
        .unwrap();
    let println = cf
        .pool
        .methodref("java/io/PrintStream", "println", "(Ljava/lang/String;)V")
        .unwrap();
    let msg = cf.pool.string("hello world").unwrap();

    let mut a = Asm::new(0);
    a.getstatic(out).ldc(msg).invokevirtual(println).ret();
    let code = a.finish().unwrap().encode(&cf.pool).unwrap();

    let name = cf.pool.utf8("main").unwrap();
    let desc = cf.pool.utf8("()V").unwrap();
    cf.methods.push(MemberInfo {
        access: AccessFlags::PUBLIC | AccessFlags::STATIC,
        name_index: name,
        descriptor_index: desc,
        attributes: vec![Attribute::Code(code)],
    });
    cf
}

fn main() {
    let org = Organization::new(
        &[hello_world()],
        Policy::parse(dvm_security::policy::example_policy()).unwrap(),
        ServiceConfig::dvm(),
        CostModel::default(),
    )
    .unwrap();

    // The proxy, pipeline, cache, signer, and console — behind a socket.
    let server = org.serve("127.0.0.1:0").unwrap();
    let addr = server.addr();
    println!("proxy server listening on {addr}");

    std::thread::scope(|scope| {
        for user in ["alice", "bob", "carol", "dave"] {
            let org = &org;
            scope.spawn(move || {
                let mut client = org.remote_client(addr, user, "applets").unwrap();
                let report = client.run_main("hello/Hello").unwrap();
                let tiers: Vec<ServedFrom> =
                    report.transfers.iter().map(|t| t.served_from).collect();
                println!(
                    "{user:6} output={:?} total={} served_from={tiers:?}",
                    client.vm.stdout, report.total_time
                );
            });
        }
    });

    let stats = server.shutdown();
    println!();
    println!("-- server --");
    println!("connections   : {}", stats.connections);
    println!("code requests : {}", stats.requests);
    println!("audit events  : {}", stats.audit_events);
    println!(
        "console log   : {} events",
        org.console.lock().total_events()
    );
    println!("sessions      : {}", org.console.lock().session_count());
}
