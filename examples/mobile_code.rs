//! Mobile code over low-bandwidth links: the §5 repartitioning service.
//!
//! Profiles a graphical application's first execution, splits cold
//! methods into on-demand overflow classes, proves the split program
//! computes the same result, and compares startup times over links from
//! 28.8 Kb/s wireless to 1 MB/s.
//!
//! ```sh
//! cargo run --release --example mobile_code
//! ```

use dvm_jvm::{Completion, MapProvider, Vm};
use dvm_monitor::{ProfileMode, SiteTable};
use dvm_netsim::presets;
use dvm_optimizer::{repartition_app, startup_time, ColdPolicy, Strategy};
use dvm_workload::{figure11_apps, generate, Disposition};

fn main() {
    // The smallest §5 app (animatedui), execution-scaled for a quick demo.
    let spec = figure11_apps().pop().unwrap().scaled(1, 20);
    let app = generate(&spec);
    println!(
        "application    : {} ({} classes, {} KB)",
        spec.name,
        app.classes.len(),
        app.total_bytes() / 1024
    );

    // 1. Profile the first execution with the monitoring service's
    //    instrumentation (first-use graph).
    let mut sites = SiteTable::new();
    let mut provider = MapProvider::new();
    for cf in &app.classes {
        let mut cf = cf.clone();
        dvm_monitor::profile_class(&mut cf, &mut sites, ProfileMode::Method).unwrap();
        provider.insert_class(&mut cf).unwrap();
    }
    struct Collector(std::sync::Arc<std::sync::Mutex<dvm_monitor::ProfileCollector>>);
    impl dvm_jvm::DynamicServices for Collector {
        fn profile_count(&mut self, site: i32) {
            self.0.lock().unwrap().count(dvm_monitor::SiteId(site));
        }
        fn first_use(&mut self, site: i32) {
            self.0.lock().unwrap().first_use(dvm_monitor::SiteId(site));
        }
    }
    let profile = std::sync::Arc::new(std::sync::Mutex::new(dvm_monitor::ProfileCollector::new()));
    let mut vm =
        Vm::with_services(Box::new(provider), Box::new(Collector(profile.clone()))).unwrap();
    let baseline_out = match vm.run_main(&app.main_class).unwrap() {
        Completion::Normal(_) => vm.stdout.clone(),
        Completion::Exception(e) => panic!("profiling run failed: {:?}", vm.exception_message(e)),
    };
    let profile = profile.lock().unwrap().clone();
    println!(
        "profiled       : {} methods used (first-use graph)",
        profile.first_use_order().len()
    );

    // 2. Repartition: never-used methods move to overflow classes.
    let (split_classes, stats) =
        repartition_app(&app.classes, &sites, &profile, ColdPolicy::NeverUsed).unwrap();
    println!(
        "repartitioned  : {} methods moved out of {} classes ({} overflow classes)",
        stats.methods_moved,
        stats.classes_split,
        split_classes.len() - app.classes.len()
    );

    // 3. The split program computes the same answer.
    let mut provider = MapProvider::new();
    for cf in &split_classes {
        let mut cf = cf.clone();
        provider.insert_class(&mut cf).unwrap();
    }
    let mut vm = Vm::new(Box::new(provider)).unwrap();
    match vm.run_main(&app.main_class).unwrap() {
        Completion::Normal(_) => assert_eq!(vm.stdout, baseline_out, "results must match"),
        Completion::Exception(e) => panic!("split run failed: {:?}", vm.exception_message(e)),
    }
    println!("verified       : split program prints {baseline_out:?} (identical)");

    // 4. Startup-time comparison across links (the Figure 11/12 model).
    let truth_profile = {
        // Transfer profile from ground truth (validated against the real
        // profile by the test suite).
        use dvm_optimizer::{AppProfile, ClassProfile, MethodProfile};
        let mut classes = Vec::new();
        for cf in &app.classes {
            let mut cf2 = cf.clone();
            let name = cf2.name().unwrap().to_owned();
            let total = cf2.to_bytes().unwrap().len() as u64;
            let mut methods = Vec::new();
            let mut mbytes = 0;
            for m in &cf.methods {
                let mname = m.name(&cf.pool).unwrap().to_owned();
                let size = m.code().map(|c| c.code.len() as u64 + 40).unwrap_or(16);
                mbytes += size;
                let d = app
                    .truth
                    .iter()
                    .find(|(c, mm, _)| c == &name && mm == &mname)
                    .map(|(_, _, d)| *d)
                    .unwrap_or(Disposition::Core);
                methods.push(MethodProfile {
                    name: mname,
                    size,
                    used_at_startup: matches!(d, Disposition::Startup | Disposition::Core),
                    used_ever: d != Disposition::Dead,
                });
            }
            classes.push(ClassProfile {
                name,
                methods,
                overhead_bytes: total.saturating_sub(mbytes),
            });
        }
        AppProfile {
            name: spec.name.clone(),
            classes,
        }
    };

    println!("\nstartup time by link (class-lazy vs repartitioned):");
    for (label, link) in [
        ("28.8 Kb/s wireless", presets::wireless_28_8kbps()),
        ("56 Kb/s modem", presets::sweep_link(7_000)),
        ("128 Kb/s ISDN", presets::sweep_link(16_000)),
        ("1 Mb/s", presets::sweep_link(125_000)),
    ] {
        let lazy = startup_time(&truth_profile, Strategy::LazyClass, &link);
        let opt = startup_time(&truth_profile, Strategy::Repartitioned, &link);
        let imp = (lazy.as_secs_f64() - opt.as_secs_f64()) / lazy.as_secs_f64() * 100.0;
        println!("  {label:<20} {lazy:>12} -> {opt:>12}  ({imp:.0}% faster)");
    }
}
